// Tests: layer-2 tunnel (client/server), gateway provider, connection
// provider -- including failure detection and gateway failover.
#include <gtest/gtest.h>

#include "routing/aodv.hpp"
#include "siphoc/connection_provider.hpp"
#include "siphoc/gateway_provider.hpp"
#include "slp/manet_slp.hpp"

namespace siphoc {
namespace {

using net::Address;

class TunnelFixture : public ::testing::Test {
 protected:
  /// Chain of n MANET nodes with full stacks; node 0 optionally wired.
  void build(std::size_t n, bool gateway_at_0 = true) {
    sim_ = std::make_unique<sim::Simulator>(13);
    medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
    internet_ = std::make_unique<net::Internet>(*sim_, milliseconds(20));
    for (std::size_t i = 0; i < n; ++i) {
      auto host = std::make_unique<net::Host>(
          *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
      host->attach_radio(
          *medium_,
          Address{net::kManetPrefix.value() + static_cast<std::uint32_t>(i) +
                  1},
          std::make_shared<net::StaticMobility>(
              net::Position{100.0 * static_cast<double>(i), 0}));
      hosts_.push_back(std::move(host));
      daemons_.push_back(std::make_unique<routing::Aodv>(*hosts_.back()));
      dirs_.push_back(std::make_unique<slp::ManetSlp>(
          *hosts_.back(), *daemons_.back(), slp::ManetSlpConfig::for_aodv()));
      daemons_.back()->start();
      gateways_.push_back(
          std::make_unique<GatewayProvider>(*hosts_.back(), *dirs_.back()));
      connections_.push_back(std::make_unique<ConnectionProvider>(
          *hosts_.back(), *dirs_.back()));
    }
    if (gateway_at_0) {
      hosts_[0]->attach_wired(*internet_, Address(192, 0, 2, 100));
    }
    for (auto& g : gateways_) g->start();
    for (auto& c : connections_) c->start();
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::unique_ptr<net::Internet> internet_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<routing::Aodv>> daemons_;
  std::vector<std::unique_ptr<slp::ManetSlp>> dirs_;
  std::vector<std::unique_ptr<GatewayProvider>> gateways_;
  std::vector<std::unique_ptr<ConnectionProvider>> connections_;
};

TEST_F(TunnelFixture, GatewayAdvertisesOnlyWhenWired) {
  build(2, /*gateway_at_0=*/false);
  sim_->run_for(seconds(12));
  EXPECT_FALSE(gateways_[0]->serving());
  EXPECT_FALSE(connections_[1]->internet_available());
  // Uplink appears at runtime.
  hosts_[0]->attach_wired(*internet_, Address(192, 0, 2, 100));
  sim_->run_for(seconds(15));
  EXPECT_TRUE(gateways_[0]->serving());
  EXPECT_TRUE(connections_[1]->internet_available());
}

TEST_F(TunnelFixture, MultihopClientAttaches) {
  build(4);
  sim_->run_for(seconds(20));
  EXPECT_TRUE(connections_[3]->internet_available());
  EXPECT_TRUE(connections_[3]->internet_address().in_prefix(
      net::kTunnelPrefix, net::kTunnelPrefixLen));
  EXPECT_EQ(gateways_[0]->tunnel_server().client_count(), 3u);
}

TEST_F(TunnelFixture, TunneledDatagramReachesInternetAndBack) {
  build(3);
  sim_->run_for(seconds(15));
  ASSERT_TRUE(connections_[2]->internet_available());

  // An Internet echo server.
  net::Host server(*sim_, 500, "echo");
  server.attach_wired(*internet_, Address(192, 0, 2, 10));
  server.bind(7000, [&](const net::Datagram& d, const net::RxInfo&) {
    net::Datagram reply;
    reply.dst = d.src;
    reply.dst_port = d.src_port;
    reply.src_port = 7000;
    reply.payload = d.payload;
    server.send_datagram(std::move(reply));
  });

  std::string echoed;
  hosts_[2]->bind(7001, [&](const net::Datagram& d, const net::RxInfo& info) {
    echoed = to_string(d.payload);
    EXPECT_EQ(info.iface, net::Interface::kTunnel);
  });
  hosts_[2]->send_udp(7001, {Address(192, 0, 2, 10), 7000},
                      to_bytes("ping-through-tunnel"));
  sim_->run_for(seconds(2));
  EXPECT_EQ(echoed, "ping-through-tunnel");
  EXPECT_GT(gateways_[0]->tunnel_server().stats().datagrams_to_internet, 0u);
  EXPECT_GT(gateways_[0]->tunnel_server().stats().datagrams_to_clients, 0u);
}

TEST_F(TunnelFixture, TunnelBetweenTwoClients) {
  build(3);
  sim_->run_for(seconds(15));
  ASSERT_TRUE(connections_[1]->internet_available());
  ASSERT_TRUE(connections_[2]->internet_available());
  // n1 sends to n2's *tunnel* address: up the tunnel, hairpin at the
  // gateway's Internet attachments, back down the other tunnel.
  std::string got;
  hosts_[2]->bind(7100, [&](const net::Datagram& d, const net::RxInfo&) {
    got = to_string(d.payload);
  });
  hosts_[1]->send_udp(7100, {connections_[2]->internet_address(), 7100},
                      to_bytes("hairpin"));
  sim_->run_for(seconds(2));
  EXPECT_EQ(got, "hairpin");
}

TEST_F(TunnelFixture, GatewayLossTearsTunnelDown) {
  build(2);
  sim_->run_for(seconds(12));
  ASSERT_TRUE(connections_[1]->internet_available());
  // Gateway vanishes (battery died).
  gateways_[0]->stop();
  medium_->set_enabled(0, false);
  sim_->run_for(seconds(15));  // keepalive misses accumulate
  EXPECT_FALSE(connections_[1]->internet_available());
}

TEST_F(TunnelFixture, FailoverToSecondGateway) {
  build(3);
  sim_->run_for(seconds(15));
  ASSERT_TRUE(connections_[1]->internet_available());
  const auto first_gw = connections_[1]->current_gateway();

  // A second gateway comes up at the other end of the chain...
  hosts_[2]->attach_wired(*internet_, Address(192, 0, 2, 102));
  sim_->run_for(seconds(10));
  // ...then the first one dies.
  hosts_[0]->detach_wired();
  gateways_[0]->stop();
  medium_->set_enabled(0, false);
  sim_->run_for(seconds(40));  // teardown + re-discovery + reconnect

  EXPECT_TRUE(connections_[1]->internet_available());
  EXPECT_NE(connections_[1]->current_gateway(), first_gw);
  EXPECT_GT(connections_[1]->gateway_discoveries(), 1u);
}

TEST_F(TunnelFixture, ServerExpiresSilentClients) {
  build(2);
  sim_->run_for(seconds(12));
  ASSERT_EQ(gateways_[0]->tunnel_server().client_count(), 1u);
  // Client node goes dark without disconnecting.
  connections_[1]->stop();
  medium_->set_enabled(1, false);
  sim_->run_for(seconds(15));
  EXPECT_EQ(gateways_[0]->tunnel_server().client_count(), 0u);
}

TEST_F(TunnelFixture, DisconnectReleasesLease) {
  build(2);
  sim_->run_for(seconds(12));
  ASSERT_EQ(gateways_[0]->tunnel_server().client_count(), 1u);
  const auto lease = connections_[1]->internet_address();
  connections_[1]->stop();  // sends DISCONNECT
  sim_->run_for(seconds(2));
  EXPECT_EQ(gateways_[0]->tunnel_server().client_count(), 0u);
  EXPECT_FALSE(internet_->attached(lease));
}

TEST_F(TunnelFixture, WiredNodeNeverOpensTunnel) {
  build(2);
  sim_->run_for(seconds(12));
  EXPECT_TRUE(connections_[0]->internet_available());
  EXPECT_FALSE(connections_[0]->tunnel_up());
  EXPECT_EQ(connections_[0]->internet_address(), Address(192, 0, 2, 100));
}

}  // namespace
}  // namespace siphoc
