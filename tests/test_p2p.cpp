// Tests: the Chord-lite P2P resolution ring (sip/p2p_resolver.hpp) -- key
// placement, finger-table routing, replication, unpublish -- and a
// registrar running in P2P mode end to end (REGISTER publishes into the
// ring, INVITE resolves through it).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/context.hpp"
#include "common/metrics.hpp"
#include "scenario/scenario.hpp"
#include "sip/p2p_resolver.hpp"
#include "sip/registrar.hpp"
#include "sip/user_agent.hpp"

namespace siphoc::sip {
namespace {

class P2pRingFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 8;

  P2pRingFixture() : sim_(31), internet_(sim_, milliseconds(5)) {
    std::vector<net::Endpoint> members;
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto host = std::make_unique<net::Host>(
          sim_, static_cast<net::NodeId>(100 + i),
          "ring-" + std::to_string(i));
      host->attach_wired(internet_,
                         net::Address(192, 0, 2, 10 + static_cast<int>(i)));
      auto resolver = std::make_unique<P2pResolver>(*host);
      members.push_back(resolver->endpoint());
      hosts_.push_back(std::move(host));
      resolvers_.push_back(std::move(resolver));
    }
    for (auto& r : resolvers_) r->join(members);
  }

  /// Resolves and runs the simulation until the callback fires.
  std::pair<std::optional<ContactBinding>, int> resolve_blocking(
      std::size_t from_node, const std::string& aor) {
    std::optional<ContactBinding> result;
    int hops = -2;
    bool done = false;
    resolvers_[from_node]->resolve(
        aor, [&](std::optional<ContactBinding> b, int h) {
          result = std::move(b);
          hops = h;
          done = true;
        });
    const TimePoint deadline = sim_.now() + seconds(5);
    while (!done && sim_.now() < deadline) sim_.run_for(milliseconds(5));
    EXPECT_TRUE(done);
    return {std::move(result), hops};
  }

  Uri contact(int octet) {
    return Uri::from_endpoint({net::Address(192, 0, 2, octet), 5060}, "u");
  }

  sim::Simulator sim_;
  net::Internet internet_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<P2pResolver>> resolvers_;
};

TEST_F(P2pRingFixture, PublishThenResolveFromEveryNode) {
  resolvers_[0]->publish("alice@voicehoc.ch", contact(1),
                         sim_.now() + seconds(600));
  sim_.run_for(seconds(1));  // let the PUT route to the responsible node

  for (std::size_t n = 0; n < kNodes; ++n) {
    auto [binding, hops] = resolve_blocking(n, "alice@voicehoc.ch");
    ASSERT_TRUE(binding) << "from node " << n;
    EXPECT_EQ(binding->contact.host, "192.0.2.1");
    EXPECT_GE(hops, 0);
    // Chord bound: hops stay logarithmic in the ring size.
    EXPECT_LE(hops, static_cast<int>(kNodes));
  }
}

TEST_F(P2pRingFixture, ExactlyOneOwnerPlusReplicas) {
  resolvers_[0]->publish("alice@voicehoc.ch", contact(1),
                         sim_.now() + seconds(600));
  sim_.run_for(seconds(1));

  // The responsible node holds the record; its successors hold replicas
  // (successor_count defaults to 2). Nobody else stores anything.
  std::size_t holders = 0;
  for (const auto& r : resolvers_) {
    if (r->stored_records() > 0) ++holders;
  }
  EXPECT_GE(holders, 1u);
  EXPECT_LE(holders, 3u);  // owner + 2 replicas
}

TEST_F(P2pRingFixture, MissForUnknownAor) {
  auto [binding, hops] = resolve_blocking(3, "nobody@voicehoc.ch");
  EXPECT_FALSE(binding);
  EXPECT_GE(hops, 0);  // answered by the responsible node, not a timeout
}

TEST_F(P2pRingFixture, UnpublishRemovesRecordAndReplicas) {
  resolvers_[2]->publish("bob@voicehoc.ch", contact(2),
                         sim_.now() + seconds(600));
  sim_.run_for(seconds(1));
  ASSERT_TRUE(resolve_blocking(5, "bob@voicehoc.ch").first);

  resolvers_[4]->unpublish("bob@voicehoc.ch");
  sim_.run_for(seconds(1));
  EXPECT_FALSE(resolve_blocking(5, "bob@voicehoc.ch").first);
  for (const auto& r : resolvers_) EXPECT_EQ(r->stored_records(), 0u);
}

TEST_F(P2pRingFixture, ExpiredRecordsAreMissesAndGetSwept) {
  resolvers_[0]->publish("carol@voicehoc.ch", contact(3),
                         sim_.now() + seconds(2));
  sim_.run_for(seconds(1));
  ASSERT_TRUE(resolve_blocking(1, "carol@voicehoc.ch").first);

  sim_.run_for(seconds(10));  // past expiry and at least one gc sweep
  EXPECT_FALSE(resolve_blocking(1, "carol@voicehoc.ch").first);
  for (const auto& r : resolvers_) EXPECT_EQ(r->stored_records(), 0u);
}

TEST_F(P2pRingFixture, ManyKeysSpreadOverTheRing) {
  for (int i = 0; i < 200; ++i) {
    resolvers_[i % kNodes]->publish("user" + std::to_string(i) + "@x",
                                    contact(1), sim_.now() + seconds(600));
  }
  sim_.run_for(seconds(2));
  std::size_t total = 0, holders = 0;
  for (const auto& r : resolvers_) {
    total += r->stored_records();
    if (r->stored_records() > 0) ++holders;
  }
  // Every record plus replicas landed somewhere, on several nodes.
  EXPECT_GE(total, 200u);
  EXPECT_GE(holders, kNodes / 2);
  // Spot-check resolvability.
  EXPECT_TRUE(resolve_blocking(7, "user0@x").first);
  EXPECT_TRUE(resolve_blocking(0, "user199@x").first);
}

// ---------------------------------------------------------------------------
// Live overlay: runtime churn, key handoff, repair, retry
// (docs/RESILIENCE.md, "ring faults")
// ---------------------------------------------------------------------------

/// The live member responsible for `aor` under successor placement: the
/// first live node clockwise at-or-after the key (same arithmetic the
/// resolver and the I5 invariant use).
P2pResolver* responsible_member(const std::vector<P2pResolver*>& live,
                                const std::string& aor) {
  const std::uint64_t key = P2pResolver::key_of(aor);
  P2pResolver* owner = nullptr;
  std::uint64_t best = ~0ull;
  for (P2pResolver* r : live) {
    const std::uint64_t d = r->node_id() - key;  // clockwise, wraps
    if (owner == nullptr || d < best) {
      owner = r;
      best = d;
    }
  }
  return owner;
}

class P2pChurnFixture : public P2pRingFixture {
 protected:
  std::vector<std::string> publish_many(std::size_t count) {
    std::vector<std::string> aors;
    for (std::size_t i = 0; i < count; ++i) {
      aors.push_back("churn" + std::to_string(i) + "@voicehoc.ch");
      resolvers_[i % kNodes]->publish(aors.back(),
                                      contact(static_cast<int>(1 + i % 20)),
                                      sim_.now() + seconds(600));
    }
    sim_.run_for(seconds(1));
    return aors;
  }

  std::vector<P2pResolver*> live_members() {
    std::vector<P2pResolver*> live;
    for (auto& r : resolvers_) {
      if (r) live.push_back(r.get());
    }
    return live;
  }
};

TEST_F(P2pChurnFixture, RuntimeJoinThenLeaveKeepsEveryBinding) {
  const auto aors = publish_many(24);

  // A ninth node joins at runtime through node 0. Every member must learn
  // of it, and records in its new arc must be handed off to it.
  auto joiner_host = std::make_unique<net::Host>(
      sim_, static_cast<net::NodeId>(200), "ring-joiner");
  joiner_host->attach_wired(internet_, net::Address(192, 0, 2, 50));
  auto joiner = std::make_unique<P2pResolver>(*joiner_host);
  joiner->join_ring(resolvers_[0]->endpoint());
  sim_.run_for(seconds(5));

  EXPECT_EQ(joiner->view_size(), kNodes + 1);
  for (const auto& r : resolvers_) EXPECT_EQ(r->view_size(), kNodes + 1);

  auto live = live_members();
  live.push_back(joiner.get());
  for (const auto& aor : aors) {
    EXPECT_TRUE(responsible_member(live, aor)->stored(aor))
        << aor << " not held by its post-join owner";
    EXPECT_TRUE(resolve_blocking(3, aor).first) << aor;
  }

  // Graceful departure: records in the joiner's arc are handed to its
  // successor and the ring reverts to the original eight members.
  joiner->leave();
  sim_.run_for(seconds(5));
  EXPECT_EQ(joiner->view_size(), 1u);
  for (const auto& r : resolvers_) EXPECT_EQ(r->view_size(), kNodes);
  live = live_members();
  for (const auto& aor : aors) {
    EXPECT_TRUE(responsible_member(live, aor)->stored(aor))
        << aor << " lost across leave()";
    EXPECT_TRUE(resolve_blocking(0, aor).first) << aor;
  }
}

TEST_F(P2pChurnFixture, CrashedMemberIsDetectedAndRecordsReReplicated) {
  const auto aors = publish_many(24);

  // Hard crash: the resolver is destroyed, its port goes dark, its stored
  // replicas are gone. Stabilization probes must notice within
  // probe_tolerance intervals, repair every view, and re-replicate until
  // each binding again has successor_count live replicas.
  resolvers_[5].reset();
  sim_.run_for(seconds(14));

  const auto live = live_members();
  ASSERT_EQ(live.size(), kNodes - 1);
  for (P2pResolver* r : live) EXPECT_EQ(r->view_size(), kNodes - 1);

  for (const auto& aor : aors) {
    EXPECT_TRUE(responsible_member(live, aor)->stored(aor))
        << aor << " lost in the crash";
    std::size_t holders = 0;
    for (P2pResolver* r : live) {
      if (r->stored(aor)) ++holders;
    }
    // Owner plus successor_count replicas (stale extra copies may linger
    // until expiry; fewer would mean re-replication failed).
    EXPECT_GE(holders, 3u) << aor;
    EXPECT_TRUE(resolve_blocking(0, aor).first) << aor;
  }
}

TEST_F(P2pChurnFixture, LookupsSurviveCrashDuringStabilization) {
  const auto aors = publish_many(24);

  // Crash a member and resolve everything *immediately* -- before any
  // probe has fired. Lookups whose route or owner was the dead node must
  // recover through the per-hop retry ladder (origin retries aim at the
  // owner/replica chain), not wait for ring repair.
  resolvers_[5].reset();

  std::size_t done = 0, hits = 0;
  for (const auto& aor : aors) {
    resolvers_[2]->resolve(aor,
                           [&](std::optional<ContactBinding> b, int) {
                             ++done;
                             if (b) ++hits;
                           });
  }
  const TimePoint deadline = sim_.now() + seconds(5);
  while (done < aors.size() && sim_.now() < deadline) {
    sim_.run_for(milliseconds(10));
  }
  EXPECT_EQ(done, aors.size());
  EXPECT_EQ(hits, aors.size()) << "a single ring-node loss must not fail "
                                  "any in-flight lookup";
  // At least one key was owned by or routed through the dead node, so the
  // retry path must actually have fired.
  const auto* retries = sim_.ctx().metrics().find_counter(
      "p2p.retry_attempts_total", "ring-2", "p2p");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value(), 0.0);
}

TEST(P2pChurnDeterminism, RetryPathIsIdenticalAcrossSimThreads) {
  // The full churn story -- region-sharded testbed, ring-node crash,
  // retries racing stabilization, restart with key handoff -- must be
  // byte-identical for any --sim-threads (the tool-level equivalent is
  // tests/chaos_p2p_identity.cmake).
  auto run = [](unsigned threads) {
    SimContext context;
    scenario::Options o;
    o.context = &context;
    o.seed = 17;
    o.nodes = 1;
    o.sim_regions = 2;
    o.sim_threads = threads;
    scenario::Testbed bed(o);
    scenario::Testbed::ProviderOptions po;
    po.resolution = scenario::Testbed::Resolution::kP2p;
    po.p2p_nodes = 4;
    bed.add_provider("voicehoc.ch", po);
    bed.start();

    const auto ring = bed.p2p_ring("voicehoc.ch");
    std::vector<std::string> aors;
    for (int i = 0; i < 12; ++i) {
      aors.push_back("det" + std::to_string(i) + "@voicehoc.ch");
      ring[0]->publish(aors.back(),
                       Uri::from_endpoint(
                           {net::Address(192, 0, 2, 100 + i), 5060}, "u"),
                       bed.sim().now() + seconds(600));
    }
    bed.run_for(seconds(1));

    bed.crash_ring_node("voicehoc.ch", 2);
    std::string transcript;
    std::size_t done = 0;
    for (const auto& aor : aors) {
      bed.p2p_ring("voicehoc.ch")[0]->resolve(
          aor, [&, aor](std::optional<ContactBinding> b, int hops) {
            ++done;
            transcript += aor + " " + (b ? b->contact.to_string() : "miss") +
                          " hops=" + std::to_string(hops) + "\n";
          });
    }
    while (done < aors.size()) bed.run_for(milliseconds(10));
    bed.run_for(seconds(12));  // repair quiesces
    bed.restart_ring_node("voicehoc.ch", 2);
    bed.run_for(seconds(6));
    bed.finalize_metrics();
    return transcript + bed.ctx().metrics().to_json() + "\n" +
           std::to_string(bed.sim().events_executed());
  };
  const std::string once = run(1);
  EXPECT_EQ(once, run(2));
  EXPECT_EQ(once, run(4));
}

// ---------------------------------------------------------------------------
// Registrar in P2P mode, wired by the Testbed
// ---------------------------------------------------------------------------

TEST(P2pProviderTest, TestbedBuildsRingAndRegistrarPublishesIntoIt) {
  scenario::Options o;
  o.nodes = 1;
  scenario::Testbed bed(o);
  scenario::Testbed::ProviderOptions po;
  po.resolution = scenario::Testbed::Resolution::kP2p;
  po.p2p_nodes = 4;
  auto& provider = bed.add_provider("voicehoc.ch", po);
  EXPECT_TRUE(provider.p2p_mode());
  const auto ring = bed.p2p_ring("voicehoc.ch");
  EXPECT_EQ(ring.size(), 5u);  // front door + 4 ring nodes
  EXPECT_TRUE(bed.p2p_ring("other.ch").empty());

  // An Internet-side phone registers against the front door; the binding
  // must land in the ring, not the registrar's local store.
  auto& phone_host = bed.add_internet_host("alice-pc");
  UserAgentConfig uc;
  uc.aor = *Uri::parse("sip:alice@voicehoc.ch");
  uc.outbound_proxy = {*bed.internet().resolve("voicehoc.ch"), 5060};
  uc.media_address = phone_host.wired_address();
  UserAgent alice(phone_host, uc);
  alice.start_registration();
  bed.run_for(seconds(2));
  EXPECT_TRUE(alice.registered());
  EXPECT_EQ(provider.binding_count(), 0u);  // local store bypassed
  std::size_t ring_records = 0;
  for (const auto* r : ring) ring_records += r->stored_records();
  EXPECT_GE(ring_records, 1u);
}

TEST(P2pProviderTest, CallResolvesThroughTheRing) {
  scenario::Options o;
  o.nodes = 1;
  scenario::Testbed bed(o);
  scenario::Testbed::ProviderOptions po;
  po.resolution = scenario::Testbed::Resolution::kP2p;
  po.p2p_nodes = 4;
  auto& provider = bed.add_provider("voicehoc.ch", po);

  auto& alice_host = bed.add_internet_host("alice-pc");
  auto& bob_host = bed.add_internet_host("bob-pc");
  const net::Endpoint front_door{*bed.internet().resolve("voicehoc.ch"),
                                 5060};

  UserAgentConfig ac;
  ac.aor = *Uri::parse("sip:alice@voicehoc.ch");
  ac.outbound_proxy = front_door;
  ac.media_address = alice_host.wired_address();
  ac.answer_delay = milliseconds(50);
  UserAgent alice(alice_host, ac);

  UserAgentConfig bc;
  bc.aor = *Uri::parse("sip:bob@voicehoc.ch");
  bc.outbound_proxy = front_door;
  bc.media_address = bob_host.wired_address();
  UserAgent bob(bob_host, bc);

  bool established = false;
  UserAgentCallbacks bob_cb;
  bob_cb.on_established = [&](CallId, net::Endpoint) { established = true; };
  bob.set_callbacks(std::move(bob_cb));

  alice.start_registration();
  bed.run_for(seconds(2));
  ASSERT_TRUE(alice.registered());

  // Bob INVITEs through the front door; the registrar resolves alice's
  // contact by hopping the ring, then forwards.
  bob.invite(*Uri::parse("sip:alice@voicehoc.ch"));
  const auto deadline = bed.sim().now() + seconds(10);
  while (!established && bed.sim().now() < deadline) {
    bed.run_for(milliseconds(20));
  }
  EXPECT_TRUE(established);
  (void)provider;
}

}  // namespace
}  // namespace siphoc::sip
