// Tests: mid-call media renegotiation (re-INVITE).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "sip/registrar.hpp"

namespace siphoc {
namespace {

class ReinviteFixture : public ::testing::Test {
 protected:
  ReinviteFixture()
      : sim_(23),
        internet_(sim_, milliseconds(10)),
        provider_host_(sim_, 100, "provider"),
        alice_host_(sim_, 0, "alice-pc"),
        bob_host_(sim_, 1, "bob-pc") {
    provider_host_.attach_wired(internet_, net::Address(192, 0, 2, 10));
    alice_host_.attach_wired(internet_, net::Address(192, 0, 2, 1));
    bob_host_.attach_wired(internet_, net::Address(192, 0, 2, 2));
    internet_.register_domain("voicehoc.ch", net::Address(192, 0, 2, 10));
    sip::RegistrarConfig rc;
    rc.domain = "voicehoc.ch";
    registrar_ = std::make_unique<sip::Registrar>(provider_host_, rc);
  }

  sip::UserAgentConfig config(const std::string& user, net::Host& host) {
    sip::UserAgentConfig c;
    c.aor = *sip::Uri::parse("sip:" + user + "@voicehoc.ch");
    c.outbound_proxy = {net::Address(192, 0, 2, 10), 5060};
    c.media_address = host.wired_address();
    c.answer_delay = milliseconds(20);
    return c;
  }

  sim::Simulator sim_;
  net::Internet internet_;
  net::Host provider_host_, alice_host_, bob_host_;
  std::unique_ptr<sip::Registrar> registrar_;
};

TEST_F(ReinviteFixture, MediaAddressUpdatePropagates) {
  sip::UserAgent alice(alice_host_, config("alice", alice_host_));
  sip::UserAgent bob(bob_host_, config("bob", bob_host_));
  std::vector<net::Endpoint> bob_media_views;  // what bob believes of alice
  sip::UserAgentCallbacks bob_cb;
  bob_cb.on_established = [&](sip::CallId, net::Endpoint remote) {
    bob_media_views.push_back(remote);
  };
  bob.set_callbacks(std::move(bob_cb));
  std::vector<net::Endpoint> alice_media_views;
  sip::UserAgentCallbacks alice_cb;
  alice_cb.on_established = [&](sip::CallId, net::Endpoint remote) {
    alice_media_views.push_back(remote);
  };
  alice.set_callbacks(std::move(alice_cb));

  alice.start_registration();
  bob.start_registration();
  sim_.run_for(seconds(1));
  const auto call = alice.invite(*sip::Uri::parse("sip:bob@voicehoc.ch"));
  sim_.run_for(seconds(2));
  ASSERT_EQ(alice_media_views.size(), 1u);
  ASSERT_EQ(bob_media_views.size(), 1u);
  EXPECT_EQ(bob_media_views[0].address, alice_host_.wired_address());

  // Alice's media moves to a new address (e.g. interface change).
  alice.reinvite(call, net::Address(192, 0, 2, 77));
  sim_.run_for(seconds(2));

  ASSERT_EQ(bob_media_views.size(), 2u);
  EXPECT_EQ(bob_media_views[1].address, net::Address(192, 0, 2, 77));
  EXPECT_EQ(bob_media_views[1].port, bob_media_views[0].port);
  // Alice also re-learned Bob's (unchanged) endpoint from the 200.
  ASSERT_EQ(alice_media_views.size(), 2u);
  EXPECT_EQ(alice_media_views[1], alice_media_views[0]);
  // The call is still up and can be torn down normally.
  EXPECT_EQ(alice.call_state(call),
            sip::UserAgent::CallState::kEstablished);
  alice.hangup(call);
  sim_.run_for(seconds(2));
  EXPECT_EQ(bob.active_calls(), 0u);
}

TEST_F(ReinviteFixture, ReinviteOnNonEstablishedCallIgnored) {
  sip::UserAgent alice(alice_host_, config("alice", alice_host_));
  alice.start_registration();
  sim_.run_for(seconds(1));
  const auto call = alice.invite(*sip::Uri::parse("sip:ghost@voicehoc.ch"));
  sim_.run_for(seconds(2));  // 404s
  alice.reinvite(call, net::Address(192, 0, 2, 77));  // must not crash
  sim_.run_for(seconds(1));
  SUCCEED();
}

TEST(ReinviteManetTest, VoiceContinuesAfterReinvite) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.voice.always_on = true;
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(2, pc);
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);
  bed.run_for(seconds(5));

  // Renegotiate with the same (valid) media address: the RTP session
  // restarts and packets keep flowing.
  alice.user_agent().reinvite(call.call, bed.host(0).manet_address());
  bed.run_for(seconds(5));
  const auto report = alice.call_report(call.call);
  ASSERT_TRUE(report);
  EXPECT_GT(report->packets_received, 100u);  // post-reinvite stream
  EXPECT_TRUE(alice.in_call(call.call));
}

}  // namespace
}  // namespace siphoc
