// Unit tests: parallel experiment cell runner (scenario/parallel.hpp).
//
// The contract under test is thread-count invariance: a grid of independent
// cells must produce byte-identical per-cell and merged results whether it
// runs inline or fanned across a worker pool. These tests carry the ctest
// label "tsan" -- the ThreadSanitizer build preset exists to run exactly
// this concurrency surface under race detection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/context.hpp"
#include "common/metrics.hpp"
#include "scenario/parallel.hpp"
#include "scenario/scenario.hpp"

namespace siphoc::scenario {
namespace {

// A real (if small) workload per cell: build a chain MANET in the cell's
// context, let routing converge, count what it emitted.
std::vector<Cell> make_grid(std::uint64_t root, std::size_t n) {
  std::vector<Cell> cells;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t seed = SimContext::derive_seed(root, k);
    cells.push_back({seed, [seed, k](SimContext& ctx) {
                       Options o;
                       o.context = &ctx;
                       o.seed = seed;
                       o.nodes = 2 + (k % 3);
                       Testbed bed(o);
                       bed.start();
                       bed.settle(seconds(2));
                       ctx.metrics()
                           .counter("test.cells_total", "runner")
                           .add();
                     }});
  }
  return cells;
}

std::vector<std::string> per_cell_csv(
    const std::vector<std::unique_ptr<SimContext>>& contexts) {
  std::vector<std::string> out;
  for (const auto& context : contexts) out.push_back(context->metrics().to_csv());
  return out;
}

TEST(ParallelRunnerTest, EveryCellRunsAndSeedsAreRecorded) {
  const auto contexts = run_cells(make_grid(42, 5), 2);
  ASSERT_EQ(contexts.size(), 5u);
  for (std::size_t k = 0; k < contexts.size(); ++k) {
    EXPECT_EQ(contexts[k]->root_seed(), SimContext::derive_seed(42, k));
    EXPECT_EQ(contexts[k]->metrics().counter_total("test.cells_total"), 1u);
  }
}

TEST(ParallelRunnerTest, ThreadCountDoesNotChangeAnyByte) {
  const auto serial = run_cells(make_grid(42, 4), 1);
  const auto pooled = run_cells(make_grid(42, 4), 4);

  EXPECT_EQ(per_cell_csv(serial), per_cell_csv(pooled));
  EXPECT_EQ(merged_metrics_json(serial), merged_metrics_json(pooled));
}

TEST(ParallelRunnerTest, MergedSidecarCarriesCellProvenance) {
  const auto contexts = run_cells(make_grid(1, 3), 2);
  const std::string json = merged_metrics_json(contexts);
  EXPECT_NE(json.find("\"merged_cells\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"siphoc.metrics.v1\""),
            std::string::npos);

  MetricsRegistry merged;
  for (const auto& context : contexts) merged.merge_from(context->metrics());
  EXPECT_EQ(merged.counter_total("test.cells_total"), 3u);
}

TEST(ParallelRunnerTest, OversubscribedPoolStillCompletes) {
  // More workers than cells, and more cells than workers: both shapes must
  // complete every cell exactly once.
  EXPECT_EQ(run_cells(make_grid(3, 2), 8).size(), 2u);
  EXPECT_EQ(run_cells(make_grid(4, 7), 3).size(), 7u);
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace siphoc::scenario
