// Unit tests: common utilities (bytes, strings, result, time, rng).
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "common/result.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"

namespace siphoc {
namespace {

TEST(BytesTest, RoundTripPrimitives) {
  Bytes buf;
  BufferWriter w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ull);
  w.str("hello");

  BufferReader r(buf);
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0102030405060708ull);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.empty());
}

TEST(BytesTest, BigEndianLayout) {
  Bytes buf;
  BufferWriter w(buf);
  w.u16(0x0102);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(BytesTest, UnderrunIsError) {
  Bytes buf = {0x01};
  BufferReader r(buf);
  EXPECT_FALSE(r.u32());
  // Failed read must not consume.
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_TRUE(r.u8());
}

TEST(BytesTest, StringUnderrun) {
  Bytes buf;
  BufferWriter w(buf);
  w.u16(100);  // claims 100 bytes, provides none
  BufferReader r(buf);
  EXPECT_FALSE(r.str());
}

TEST(BytesTest, HexDumpShape) {
  Bytes data(20, 0x41);  // 'A'
  const std::string dump = hex_dump(data);
  EXPECT_NE(dump.find("41 41"), std::string::npos);
  EXPECT_NE(dump.find("|AAAA"), std::string::npos);
  EXPECT_NE(dump.find("0010"), std::string::npos);  // second row offset
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\thi"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitTrimmedDropsEmpty) {
  const auto parts = split_trimmed(" a ; ; b ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, CaseInsensitive) {
  EXPECT_TRUE(iequals("Via", "VIA"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("via", "vi"));
  EXPECT_TRUE(istarts_with("SIP/2.0/UDP", "sip/2.0"));
  EXPECT_EQ(to_lower("CSeq"), "cseq");
}

TEST(StringsTest, SplitKv) {
  const auto [k, v] = split_kv(" branch = z9hG4bK77 ", '=');
  EXPECT_EQ(k, "branch");
  EXPECT_EQ(v, "z9hG4bK77");
  const auto [k2, v2] = split_kv("lr", '=');
  EXPECT_EQ(k2, "lr");
  EXPECT_EQ(v2, "");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok);
  EXPECT_EQ(*ok, 42);
  Result<int> err = fail("boom", 7);
  EXPECT_FALSE(err);
  EXPECT_EQ(err.error().message, "boom");
  EXPECT_EQ(err.error().code, 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, VoidResult) {
  Result<void> ok;
  EXPECT_TRUE(ok);
  Result<void> err = fail("nope");
  EXPECT_FALSE(err);
  EXPECT_EQ(err.error().message, "nope");
}

TEST(TimeTest, Formatting) {
  const TimePoint t = TimePoint{} + seconds(12) + microseconds(34567);
  EXPECT_EQ(format_time(t), "12.034567s");
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(seconds(2)), 2000.0);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    const auto n = rng.uniform_int(5, 9);
    EXPECT_GE(n, 5u);
    EXPECT_LE(n, 9u);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(3);
  double total = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    total += to_seconds(rng.exponential(seconds(2)));
  }
  EXPECT_NEAR(total / samples, 2.0, 0.1);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.uniform() != child.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace siphoc
