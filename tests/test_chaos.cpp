// Chaos engine soak: seed-derived fault plans against a full deployment,
// every recovery invariant enforced, codec hardening proven on the air.
//
// The soak is the repo's strongest end-to-end robustness statement: for
// several seeds, a 6-node MANET with gateways at both ends runs a call
// workload while the FaultEngine crashes nodes, partitions the chain, jams
// radios and corrupts frames -- and afterwards every invariant of
// docs/RESILIENCE.md must hold, and not one corrupted frame may have been
// decoded into any routing table, SLP cache or tunnel.
#include <gtest/gtest.h>

#include "net/medium.hpp"
#include "scenario/faults.hpp"
#include "scenario/invariants.hpp"

namespace siphoc {
namespace {

using scenario::FaultEngine;
using scenario::FaultEvent;
using scenario::FaultPlan;
using scenario::InvariantMonitor;
using scenario::Options;
using scenario::Testbed;

// ---------------------------------------------------------------------------
// FaultPlan format
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryCommand) {
  const auto plan = FaultPlan::parse(R"(# a comment
at 5s crash 2
at 12s restart 2
at 3s partition 0,1 | 2,3
at 20s heal
at 8s loss 0 0.4 5s
at 10s corrupt 0.05
at 10s duplicate 0.02
at 10500ms reorder 0.1 25ms
at 15s jam 1,2
at 18s unjam 1,2
at 40s kill-gateway 0
at 20s ring-crash 2
at 35s ring-restart 2
)");
  ASSERT_TRUE(plan) << plan.error().message;
  EXPECT_EQ(plan->events.size(), 13u);
  // Sorted by time.
  EXPECT_EQ(plan->events.front().kind, FaultEvent::Kind::kPartition);
  EXPECT_EQ(plan->events.back().kind, FaultEvent::Kind::kKillGateway);
}

TEST(FaultPlanTest, RejectsGarbage) {
  EXPECT_FALSE(FaultPlan::parse("at 5s explode 3"));
  EXPECT_FALSE(FaultPlan::parse("crash 3"));
  EXPECT_FALSE(FaultPlan::parse("at -2s crash 3"));
  EXPECT_FALSE(FaultPlan::parse("at 5s loss 1.5 0 1s"));
  EXPECT_FALSE(FaultPlan::parse("at 5s partition 0,1 2,3"));
}

TEST(FaultPlanTest, TextFormRoundTrips) {
  const auto plan = FaultPlan::generate(99, seconds(90), 6, {1, 4});
  const auto reparsed = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(reparsed) << reparsed.error().message;
  EXPECT_EQ(plan.to_string(), reparsed->to_string());
}

TEST(FaultPlanTest, GenerateIsDeterministicAndSafe) {
  const auto a = FaultPlan::generate(7, seconds(120), 6, {1, 4});
  const auto b = FaultPlan::generate(7, seconds(120), 6, {1, 4});
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(),
            FaultPlan::generate(8, seconds(120), 6, {1, 4}).to_string());

  bool saw_corrupt = false;
  bool saw_loss = false;
  int crashes = 0;
  int restarts = 0;
  int partitions = 0;
  int heals = 0;
  for (const auto& event : a.events) {
    switch (event.kind) {
      case FaultEvent::Kind::kCorrupt:
        saw_corrupt = true;
        break;
      case FaultEvent::Kind::kLoss:
        saw_loss = true;
        break;
      case FaultEvent::Kind::kCrash:
        ++crashes;
        // Protected nodes are never crashed.
        for (std::size_t n : event.nodes) {
          EXPECT_NE(n, 1u);
          EXPECT_NE(n, 4u);
        }
        break;
      case FaultEvent::Kind::kRestart:
        ++restarts;
        break;
      case FaultEvent::Kind::kPartition:
        ++partitions;
        break;
      case FaultEvent::Kind::kHeal:
        ++heals;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_corrupt);
  EXPECT_TRUE(saw_loss);
  EXPECT_EQ(crashes, restarts);  // the network always comes back
  EXPECT_EQ(partitions, heals);
}

TEST(FaultPlanTest, GenerateWithRingNodesAppendsRingChurn) {
  // Without ring nodes: plans are byte-identical to the default form --
  // the ring stream draws strictly after every other stream.
  const auto base = FaultPlan::generate(7, seconds(120), 6, {1, 4});
  const auto with_ring = FaultPlan::generate(7, seconds(120), 6, {1, 4}, 4);
  EXPECT_EQ(base.to_string(),
            FaultPlan::generate(7, seconds(120), 6, {1, 4}, 0).to_string());

  int ring_crashes = 0;
  int ring_restarts = 0;
  Duration down_at{};
  Duration up_at{};
  for (const auto& event : with_ring.events) {
    if (event.kind == FaultEvent::Kind::kRingCrash) {
      ++ring_crashes;
      down_at = event.at;
      ASSERT_EQ(event.nodes.size(), 1u);
      // Ring index: 1..ring_nodes (0 is the front door, never crashed).
      EXPECT_GE(event.nodes[0], 1u);
      EXPECT_LE(event.nodes[0], 4u);
    } else if (event.kind == FaultEvent::Kind::kRingRestart) {
      ++ring_restarts;
      up_at = event.at;
    }
  }
  EXPECT_EQ(ring_crashes, 1);
  EXPECT_EQ(ring_restarts, 1);  // always paired: the ring ends whole
  EXPECT_LT(down_at, up_at);
  // Every non-ring event is unchanged by the ring stream.
  std::string base_text = base.to_string();
  for (const auto& event : with_ring.events) {
    if (event.kind != FaultEvent::Kind::kRingCrash &&
        event.kind != FaultEvent::Kind::kRingRestart) {
      EXPECT_NE(base_text.find(event.to_string()), std::string::npos)
          << event.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Codec hardening: corrupted frames are rejected, never ingested
// ---------------------------------------------------------------------------

TEST(ChaosTest, CorruptedFramesNeverPoisonState) {
  Options o;
  o.seed = 11;
  o.nodes = 4;
  o.spacing = 80;
  Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  net::FaultKnobs knobs;
  knobs.corrupt_probability = 0.2;  // brutal
  bed.medium().set_fault_knobs(knobs);
  // Keep dialing so routing, SLP, SIP and RTP all keep putting frames on the
  // corrupted air.
  for (int round = 0; round < 6; ++round) {
    const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
    if (result.established) {
      bed.run_for(seconds(2));
      alice.hang_up(result.call);
    }
    bed.run_for(seconds(2));
  }

  const auto& stats = bed.medium().stats();
  EXPECT_GT(stats.frames_corrupted, 50u) << "corruption injector inactive";
  // The CRC trailers must have rejected every mangled frame: any decode
  // that *succeeded* on a corrupted datagram bumps this counter.
  EXPECT_EQ(bed.ctx().metrics().counter_total("chaos.corrupt_accepted_total"),
            0u);
  EXPECT_GT(bed.ctx().metrics().counter_total("routing.decode_errors_total"),
            0u);
}

// ---------------------------------------------------------------------------
// Crash / restart mechanics
// ---------------------------------------------------------------------------

TEST(ChaosTest, CrashAndRestartNodeRecovers) {
  Options o;
  o.seed = 21;
  o.nodes = 3;
  Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  ASSERT_TRUE(bed.call_and_wait(alice, "bob@voicehoc.ch").established);

  // Kill the relay's whole stack mid-run; the endpoints survive.
  bed.crash_node(1);
  EXPECT_FALSE(bed.node_alive(1));
  bed.run_for(seconds(5));
  const auto cut = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
  EXPECT_FALSE(cut.established);

  bed.restart_node(1);
  EXPECT_TRUE(bed.node_alive(1));
  bed.run_for(seconds(5));
  const auto healed = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(15));
  EXPECT_TRUE(healed.established);
}

TEST(ChaosTest, CrashedCalleeNodeStillTerminatesCalls) {
  Options o;
  o.seed = 22;
  o.nodes = 3;
  Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);

  bed.crash_node(2);
  alice.hang_up(call.call);
  // The BYE goes nowhere; the transaction must still time out and every
  // invariant must hold afterwards.
  bed.run_for(seconds(50));
  InvariantMonitor monitor(bed);
  monitor.check();
  EXPECT_TRUE(monitor.report().ok()) << monitor.report().to_string();
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);
}

// ---------------------------------------------------------------------------
// The soak
// ---------------------------------------------------------------------------

/// One full chaos soak under a generated plan; returns the invariant report
/// plus hard assertions shared by every seed.
void run_soak(std::uint64_t seed) {
  SCOPED_TRACE("soak seed " + std::to_string(seed));
  Options o;
  o.seed = seed;
  o.nodes = 6;
  o.spacing = 80;
  Testbed bed(o);
  bed.make_gateway(0);
  bed.make_gateway(5);
  bed.start();
  auto& alice = bed.add_phone(1, "alice");
  auto& bob = bed.add_phone(4, "bob");
  bed.settle(seconds(5));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  const Duration duration = seconds(60);
  const FaultPlan plan = FaultPlan::generate(seed, duration, o.nodes, {1, 4});
  FaultEngine engine(bed);
  InvariantMonitor monitor(bed, &engine);
  engine.apply(plan);
  monitor.start(seconds(1));

  std::size_t established = 0;
  const TimePoint end = bed.sim().now() + duration;
  while (bed.sim().now() < end) {
    const auto result =
        bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
    if (result.established) {
      ++established;
      bed.run_for(seconds(3));
      alice.hang_up(result.call);
    }
    bed.run_for(seconds(2));
  }

  // Quiet recovery tail, then the final sweep.
  bed.run_for(seconds(45));
  monitor.stop();
  monitor.check();

  EXPECT_TRUE(monitor.report().ok()) << monitor.report().to_string();
  EXPECT_GT(monitor.report().checks, 50u);
  // The plan always contains a corruption epoch; the injector must have
  // fired and the codecs must have rejected every single mangled frame.
  EXPECT_GT(bed.medium().stats().frames_corrupted, 0u);
  EXPECT_EQ(bed.ctx().metrics().counter_total("chaos.corrupt_accepted_total"),
            0u)
      << "a corrupted frame was decoded into live state";
  // The workload survived chaos at least part of the time.
  EXPECT_GT(established, 0u);
  // All nodes are back (generated plans pair crash with restart).
  for (std::size_t i = 0; i < bed.size(); ++i) {
    EXPECT_TRUE(bed.node_alive(i)) << "node " << i << " still down";
  }
}

TEST(ChaosSoakTest, Seed101) { run_soak(101); }
TEST(ChaosSoakTest, Seed202) { run_soak(202); }
TEST(ChaosSoakTest, Seed303) { run_soak(303); }

/// Chaos with a P2P provider: the fault plan crashes a ring member (losing
/// its stored replicas), stabilization repairs the overlay and
/// re-replicates, the member rejoins at runtime -- and afterwards I5 holds
/// and every registered AOR still resolves. The no-lost-binding statement.
void run_p2p_soak(std::uint64_t seed) {
  SCOPED_TRACE("p2p soak seed " + std::to_string(seed));
  Options o;
  o.seed = seed;
  o.nodes = 4;
  o.spacing = 80;
  Testbed bed(o);
  bed.make_gateway(0);
  bed.make_gateway(3);
  Testbed::ProviderOptions po;
  po.resolution = Testbed::Resolution::kP2p;
  po.p2p_nodes = 4;
  bed.add_provider("voicehoc.ch", po);
  bed.start();
  auto& alice = bed.add_phone(1, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(5));
  ASSERT_TRUE(bed.register_and_wait(alice));
  ASSERT_TRUE(bed.register_and_wait(bob));

  // Every MANET node is protected: ring churn is the subject under test
  // (and stable gateways keep the published tunnel contacts routable, so
  // I5's dead-contact clause can only be tripped by the ring itself).
  const Duration duration = seconds(45);
  const FaultPlan plan =
      FaultPlan::generate(seed, duration, o.nodes, {0, 1, 2, 3},
                          po.p2p_nodes);
  FaultEngine engine(bed);
  InvariantMonitor monitor(bed, &engine);
  engine.apply(plan);
  monitor.start(seconds(1));

  std::size_t established = 0;
  const TimePoint end = bed.sim().now() + duration;
  while (bed.sim().now() < end) {
    const auto result =
        bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
    if (result.established) {
      ++established;
      bed.run_for(seconds(3));
      alice.hang_up(result.call);
    }
    bed.run_for(seconds(2));
  }

  bed.run_for(seconds(30));
  monitor.stop();
  monitor.check();

  EXPECT_TRUE(monitor.report().ok()) << monitor.report().to_string();
  EXPECT_GT(established, 0u);

  // The plan crashed and restarted one ring member.
  const auto& narration = engine.narration();
  const auto saw = [&](const std::string& what) {
    for (const auto& line : narration) {
      if (line.find(what) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(saw("ring-crash")) << "plan never crashed a ring member";
  EXPECT_TRUE(saw("ring-restart"));

  // The ring is whole and stable again...
  const auto ring = bed.p2p_ring("voicehoc.ch");
  for (std::size_t i = 0; i < ring.size(); ++i) {
    ASSERT_NE(ring[i], nullptr) << "ring member " << i << " still down";
    EXPECT_EQ(ring[i]->view_size(), ring.size());
    EXPECT_TRUE(ring[i]->stable());
  }
  // ... and lookup success after stabilization is 100%.
  for (const char* aor : {"alice@voicehoc.ch", "bob@voicehoc.ch"}) {
    bool done = false;
    bool hit = false;
    ring.front()->resolve(aor, [&](std::optional<sip::ContactBinding> b,
                                   int) {
      done = true;
      hit = b.has_value();
    });
    bed.run_for(seconds(3));
    EXPECT_TRUE(done);
    EXPECT_TRUE(hit) << aor << " lost after ring churn";
  }
}

TEST(ChaosSoakTest, P2pRingChurnSeed77) { run_p2p_soak(77); }
TEST(ChaosSoakTest, P2pRingChurnSeed88) { run_p2p_soak(88); }

/// Same seed, twice: the entire run -- fault schedule, packet schedule,
/// metric registry -- must be identical.
TEST(ChaosSoakTest, SameSeedIsByteIdentical) {
  const auto run_once = [](std::uint64_t seed) {
    SimContext ctx;
    std::string narration;
    std::string metrics;
    {
      SimContext::Bind bind(ctx);
      Options o;
      o.context = &ctx;
      o.seed = seed;
      o.nodes = 5;
      o.spacing = 80;
      Testbed bed(o);
      bed.start();
      auto& alice = bed.add_phone(0, "alice");
      auto& bob = bed.add_phone(4, "bob");
      bed.settle(seconds(3));
      bed.register_and_wait(alice);
      bed.register_and_wait(bob);

      const FaultPlan plan =
          FaultPlan::generate(seed, seconds(30), o.nodes, {0, 4});
      FaultEngine engine(bed);
      engine.apply(plan);
      bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
      bed.run_for(seconds(40));
      for (const auto& line : engine.narration()) {
        narration += line + "\n";
      }
      metrics = ctx.metrics().to_json();
    }
    return narration + metrics;
  };
  const auto first = run_once(42);
  const auto second = run_once(42);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, run_once(43));
}

}  // namespace
}  // namespace siphoc
