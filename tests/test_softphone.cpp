// Tests: softphone-level behavior (the out-of-the-box application surface)
// including caller-side CANCEL of a ringing call.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace siphoc::voip {
namespace {

class PhonePair : public ::testing::Test {
 protected:
  PhonePair() {
    scenario::Options o;
    o.nodes = 3;
    o.routing = RoutingKind::kAodv;
    bed_ = std::make_unique<scenario::Testbed>(o);
    bed_->start();
    SoftPhoneConfig pc;
    pc.username = "alice";
    pc.domain = "voicehoc.ch";
    alice_ = &bed_->add_phone(0, pc);
    pc.username = "bob";
    pc.auto_answer = false;  // manual control for cancel/reject flows
    bob_ = &bed_->add_phone(2, pc);
    bed_->settle(seconds(2));
    bed_->register_and_wait(*alice_);
    bed_->register_and_wait(*bob_);
  }

  std::unique_ptr<scenario::Testbed> bed_;
  SoftPhone* alice_ = nullptr;
  SoftPhone* bob_ = nullptr;
};

TEST_F(PhonePair, CallerCancelsRingingCall) {
  sip::CallId bob_incoming = 0;
  bool bob_ended = false;
  SoftPhoneEvents be;
  be.on_incoming = [&](sip::CallId id, const sip::Uri&) {
    bob_incoming = id;
  };
  be.on_ended = [&](sip::CallId) { bob_ended = true; };
  bob_->set_events(std::move(be));

  bool alice_failed = false;
  int fail_status = 0;
  SoftPhoneEvents ae;
  ae.on_failed = [&](sip::CallId, int status) {
    alice_failed = true;
    fail_status = status;
  };
  alice_->set_events(std::move(ae));

  const auto call = alice_->dial("bob@voicehoc.ch");
  bed_->run_for(seconds(2));  // bob is ringing, nobody answers
  ASSERT_NE(bob_incoming, 0u);
  ASSERT_FALSE(alice_failed);

  alice_->hang_up(call);  // CANCEL
  bed_->run_for(seconds(3));
  EXPECT_TRUE(alice_failed);
  EXPECT_EQ(fail_status, 487);  // Request Terminated
  EXPECT_TRUE(bob_ended);
  EXPECT_EQ(bob_->user_agent().active_calls(), 0u);
  EXPECT_EQ(alice_->user_agent().active_calls(), 0u);
}

TEST_F(PhonePair, DialAcceptsBareAorAndFullUri) {
  EXPECT_NE(alice_->dial("bob@voicehoc.ch"), 0u);
  EXPECT_NE(alice_->dial("sip:bob@voicehoc.ch"), 0u);
  EXPECT_EQ(alice_->dial("not a uri at all:::"), 0u);
}

TEST_F(PhonePair, CallReportLifecycle) {
  sip::CallId bob_incoming = 0;
  SoftPhoneEvents be;
  be.on_incoming = [&](sip::CallId id, const sip::Uri&) {
    bob_incoming = id;
  };
  bob_->set_events(std::move(be));
  const auto call = alice_->dial("bob@voicehoc.ch");
  bed_->run_for(seconds(1));
  EXPECT_FALSE(alice_->call_report(call).has_value());  // not established
  bob_->answer(bob_incoming);
  bed_->run_for(seconds(5));
  ASSERT_TRUE(alice_->call_report(call).has_value());   // live session
  const auto live = alice_->call_report(call)->packets_sent;
  EXPECT_GT(live, 0u);
  alice_->hang_up(call);
  bed_->run_for(seconds(1));
  // Final report survives teardown.
  ASSERT_TRUE(alice_->call_report(call).has_value());
  EXPECT_GE(alice_->call_report(call)->packets_sent, live);
}

TEST_F(PhonePair, PowerOffUnregistersAndStopsMedia) {
  sip::CallId bob_incoming = 0;
  SoftPhoneEvents be;
  be.on_incoming = [&](sip::CallId id, const sip::Uri&) {
    bob_incoming = id;
  };
  bob_->set_events(std::move(be));
  const auto call = alice_->dial("bob@voicehoc.ch");
  bed_->run_for(seconds(1));
  bob_->answer(bob_incoming);
  bed_->run_for(seconds(2));
  ASSERT_TRUE(alice_->in_call(call));

  alice_->power_off();
  bed_->run_for(seconds(2));
  EXPECT_FALSE(alice_->registered());
  // Alice's proxy no longer holds her binding: new calls to her 404.
  bool done = false;
  int status = 0;
  SoftPhoneEvents be2;
  be2.on_failed = [&](sip::CallId, int s) {
    done = true;
    status = s;
  };
  bob_->set_events(std::move(be2));
  bob_->dial("alice@voicehoc.ch");
  const auto deadline = bed_->sim().now() + seconds(12);
  while (!done && bed_->sim().now() < deadline) {
    bed_->run_for(milliseconds(20));
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(status, 404);
}

TEST_F(PhonePair, RemoteRtcpViewAvailableDuringCall) {
  sip::CallId bob_incoming = 0;
  SoftPhoneEvents be;
  be.on_incoming = [&](sip::CallId id, const sip::Uri&) {
    bob_incoming = id;
  };
  bob_->set_events(std::move(be));
  const auto call = alice_->dial("bob@voicehoc.ch");
  bed_->run_for(seconds(1));
  bob_->answer(bob_incoming);
  bed_->run_for(seconds(12));  // a couple of RTCP intervals
  const auto report = alice_->call_report(call);
  ASSERT_TRUE(report);
  ASSERT_TRUE(report->remote_loss_percent.has_value());
  EXPECT_LT(*report->remote_loss_percent, 5.0);
}

}  // namespace
}  // namespace siphoc::voip
