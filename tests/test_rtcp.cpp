// Tests: RTCP codec and the far-end feedback loop (each side learns what
// the other side's listener is experiencing).
#include <gtest/gtest.h>

#include "rtp/session.hpp"

namespace siphoc::rtp {
namespace {

TEST(RtcpCodecTest, SenderReportRoundTrip) {
  RtcpPacket p;
  p.is_sender_report = true;
  p.sender_ssrc = 0xAAAA5555;
  p.sender_info.ntp_time = 123456789;
  p.sender_info.rtp_timestamp = 16000;
  p.sender_info.packet_count = 500;
  p.sender_info.octet_count = 80000;
  ReportBlock block;
  block.ssrc = 0x1111;
  block.fraction_lost = 25;  // ~10%
  block.cumulative_lost = 0x123456;
  block.highest_seq = 0x00020001;
  block.jitter = 160;
  p.reports.push_back(block);

  auto decoded = RtcpPacket::decode(p.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->is_sender_report);
  EXPECT_EQ(decoded->sender_ssrc, 0xAAAA5555u);
  EXPECT_EQ(decoded->sender_info.ntp_time, 123456789u);
  EXPECT_EQ(decoded->sender_info.packet_count, 500u);
  ASSERT_EQ(decoded->reports.size(), 1u);
  EXPECT_EQ(decoded->reports[0].fraction_lost, 25);
  EXPECT_EQ(decoded->reports[0].cumulative_lost, 0x123456u);
  EXPECT_EQ(decoded->reports[0].highest_seq, 0x00020001u);
  EXPECT_EQ(decoded->reports[0].jitter, 160u);
}

TEST(RtcpCodecTest, ReceiverReportWithoutSenderInfo) {
  RtcpPacket p;
  p.is_sender_report = false;
  p.sender_ssrc = 7;
  auto decoded = RtcpPacket::decode(p.encode());
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->is_sender_report);
  EXPECT_TRUE(decoded->reports.empty());
}

TEST(RtcpCodecTest, GarbageRejected) {
  Bytes junk = {0x00, 0xc8, 0x00};
  EXPECT_FALSE(RtcpPacket::decode(junk));  // wrong version
  Bytes wrong_type = {0x80, 0x99, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01};
  EXPECT_FALSE(RtcpPacket::decode(wrong_type));
  EXPECT_FALSE(RtcpPacket::decode(Bytes{}));
}

TEST(RtcpCodecTest, FractionLostConversion) {
  EXPECT_DOUBLE_EQ(fraction_lost_percent(0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_lost_percent(128), 50.0);
  EXPECT_NEAR(fraction_lost_percent(26), 10.15, 0.01);
}

TEST(ReceiverStatsTest, IntervalFractionLost) {
  ReceiverStats stats;
  const TimePoint t0 = TimePoint{} + seconds(1);
  // First interval: receive 8 of 10.
  for (const std::uint16_t seq : {1, 2, 3, 4, 6, 7, 9, 10}) {
    RtpPacket p;
    p.sequence = seq;
    stats.on_packet(p, t0 + milliseconds(seq * 20 + 2),
                    t0 + milliseconds(seq * 20));
  }
  const auto f1 = stats.take_interval_fraction_lost();
  EXPECT_NEAR(fraction_lost_percent(f1), 20.0, 3.0);
  // Second interval: lossless.
  for (std::uint16_t seq = 11; seq <= 20; ++seq) {
    RtpPacket p;
    p.sequence = seq;
    stats.on_packet(p, t0 + milliseconds(seq * 20 + 2),
                    t0 + milliseconds(seq * 20));
  }
  EXPECT_EQ(stats.take_interval_fraction_lost(), 0);
}

TEST(RtcpSessionTest, FarEndFeedbackFlows) {
  sim::Simulator sim(5);
  net::Internet internet(sim, milliseconds(10));
  net::Host a(sim, 0, "a"), b(sim, 1, "b");
  a.attach_wired(internet, net::Address(192, 0, 2, 1));
  b.attach_wired(internet, net::Address(192, 0, 2, 2));

  SessionConfig ca;
  ca.local_port = 8000;
  ca.remote = {net::Address(192, 0, 2, 2), 8000};
  ca.voice.always_on = true;
  SessionConfig cb = ca;
  cb.remote = {net::Address(192, 0, 2, 1), 8000};

  Session sa(a, ca), sb(b, cb);
  sa.start();
  sb.start();
  sim.run_for(seconds(20));

  EXPECT_GE(sa.rtcp_sent(), 3u);
  EXPECT_GE(sa.rtcp_received(), 3u);
  const auto ra = sa.report();
  // Lossless wire: the far end reports a clean stream.
  ASSERT_TRUE(ra.remote_loss_percent.has_value());
  EXPECT_DOUBLE_EQ(*ra.remote_loss_percent, 0.0);
  ASSERT_TRUE(ra.remote_jitter_ms.has_value());
  EXPECT_LT(*ra.remote_jitter_ms, 1.0);
  sa.stop();
  sb.stop();
}

TEST(RtcpSessionTest, RemoteReportReflectsActualLoss) {
  // a -> b path drops packets; b's RTCP must tell a about it.
  sim::Simulator sim(9);
  net::RadioMedium medium(sim, [] {
    net::RadioConfig c;
    c.loss_probability = 0.2;
    return c;
  }());
  net::Host a(sim, 0, "a"), b(sim, 1, "b");
  a.attach_radio(medium, net::Address(10, 0, 0, 1),
                 std::make_shared<net::StaticMobility>(net::Position{0, 0}));
  b.attach_radio(medium, net::Address(10, 0, 0, 2),
                 std::make_shared<net::StaticMobility>(net::Position{10, 0}));

  SessionConfig ca;
  ca.local_port = 8000;
  ca.remote = {net::Address(10, 0, 0, 2), 8000};
  ca.voice.always_on = true;
  SessionConfig cb = ca;
  cb.remote = {net::Address(10, 0, 0, 1), 8000};

  Session sa(a, ca), sb(b, cb);
  sa.start();
  sb.start();
  sim.run_for(seconds(60));

  const auto ra = sa.report();
  ASSERT_TRUE(ra.remote_loss_percent.has_value());
  // ~20% radio loss: the far-end report should land in that ballpark.
  EXPECT_GT(*ra.remote_loss_percent, 8.0);
  EXPECT_LT(*ra.remote_loss_percent, 35.0);
  sa.stop();
  sb.stop();
}

}  // namespace
}  // namespace siphoc::rtp
