// Tests: MD5 (RFC 1321 vectors), digest computation (RFC 2617 example),
// header parsing, and the end-to-end 401 challenge/answer flow -- both
// directly against a provider and transparently through the SIPHoc
// proxy + gateway from inside a MANET.
#include <gtest/gtest.h>

#include "common/md5.hpp"
#include "scenario/scenario.hpp"
#include "sip/auth.hpp"

namespace siphoc {
namespace {

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5_hex("1234567890123456789012345678901234567890123456789012345"
                    "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Padding corner cases: 55/56/63/64/65 bytes straddle the one-vs-two
  // final-block decision.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string input(len, 'x');
    const auto digest = md5_hex(input);
    EXPECT_EQ(digest.size(), 32u);
    EXPECT_EQ(digest, md5_hex(input));  // deterministic
  }
}

TEST(DigestTest, Rfc2617StyleResponse) {
  // HA1/HA2 construction sanity: a fixed tuple must give a stable value
  // that verify_authorization accepts.
  const std::string response = sip::digest_response(
      "bob", "biloxi.com", "zanzibar", "dcd98b7102dd2f0e8b11d0f600bfb0c093",
      "REGISTER", "sip:biloxi.com");
  EXPECT_EQ(response.size(), 32u);
  sip::DigestAuthorization auth;
  auth.username = "bob";
  auth.realm = "biloxi.com";
  auth.nonce = "dcd98b7102dd2f0e8b11d0f600bfb0c093";
  auth.uri = "sip:biloxi.com";
  auth.response = response;
  EXPECT_TRUE(sip::verify_authorization(auth, "zanzibar", "REGISTER"));
  EXPECT_FALSE(sip::verify_authorization(auth, "wrong", "REGISTER"));
  EXPECT_FALSE(sip::verify_authorization(auth, "zanzibar", "INVITE"));
}

TEST(DigestTest, HeaderRoundTrips) {
  sip::DigestChallenge challenge;
  challenge.realm = "voicehoc.ch";
  challenge.nonce = "abc123";
  auto parsed = sip::DigestChallenge::parse(challenge.to_string());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->realm, "voicehoc.ch");
  EXPECT_EQ(parsed->nonce, "abc123");

  sip::DigestAuthorization auth;
  auth.username = "alice";
  auth.realm = "voicehoc.ch";
  auth.nonce = "abc123";
  auth.uri = "sip:voicehoc.ch";
  auth.response = std::string(32, 'f');
  auto parsed_auth = sip::DigestAuthorization::parse(auth.to_string());
  ASSERT_TRUE(parsed_auth);
  EXPECT_EQ(parsed_auth->username, "alice");
  EXPECT_EQ(parsed_auth->response, std::string(32, 'f'));
}

TEST(DigestTest, ParseRejections) {
  EXPECT_FALSE(sip::DigestChallenge::parse("Basic realm=\"x\""));
  EXPECT_FALSE(sip::DigestChallenge::parse("Digest nonce=\"only\""));
  EXPECT_FALSE(sip::DigestAuthorization::parse("Digest username=\"a\""));
}

TEST(AuthFlowTest, RegisterWithCorrectPassword) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  // Providers built by add_provider don't require auth; spawn a dedicated
  // registrar with credentials.
  auto& host = bed.add_internet_host("auth-provider");
  sip::RegistrarConfig rc;
  rc.domain = "auth.org";
  rc.require_auth = true;
  rc.credentials["carol"] = "opensesame";
  sip::Registrar auth_provider(host, rc);
  bed.internet().register_domain("auth.org", host.wired_address());

  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(10));

  voip::SoftPhoneConfig pc;
  pc.username = "carol";
  pc.domain = "auth.org";
  pc.password = "opensesame";
  auto& phone = bed.add_phone(1, pc);
  EXPECT_TRUE(bed.register_and_wait(phone, seconds(20)));
  EXPECT_TRUE(auth_provider.binding("carol@auth.org").has_value());
}

TEST(AuthFlowTest, WrongPasswordRejected403) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  auto& host = bed.add_internet_host("auth-provider");
  sip::RegistrarConfig rc;
  rc.domain = "auth.org";
  rc.require_auth = true;
  rc.credentials["carol"] = "opensesame";
  sip::Registrar auth_provider(host, rc);
  bed.internet().register_domain("auth.org", host.wired_address());

  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(10));

  voip::SoftPhoneConfig pc;
  pc.username = "carol";
  pc.domain = "auth.org";
  pc.password = "letmein";
  auto& phone = bed.add_phone(1, pc);
  bool done = false, ok = true;
  int status = 0;
  voip::SoftPhoneEvents events;
  events.on_registered = [&](bool success, int s) {
    done = true;
    ok = success;
    status = s;
  };
  phone.set_events(std::move(events));
  phone.power_on();
  const auto deadline = bed.sim().now() + seconds(20);
  while (!done && bed.sim().now() < deadline) bed.run_for(milliseconds(20));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(status, 403);
  EXPECT_FALSE(auth_provider.binding("carol@auth.org").has_value());
}

TEST(AuthFlowTest, NoPasswordConfiguredStopsAt401) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  auto& host = bed.add_internet_host("auth-provider");
  sip::RegistrarConfig rc;
  rc.domain = "auth.org";
  rc.require_auth = true;
  rc.credentials["carol"] = "opensesame";
  sip::Registrar auth_provider(host, rc);
  bed.internet().register_domain("auth.org", host.wired_address());
  (void)auth_provider;

  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(10));

  auto& phone = bed.add_phone(1, "carol", "auth.org");  // no password
  bool done = false, ok = true;
  int status = 0;
  voip::SoftPhoneEvents events;
  events.on_registered = [&](bool success, int s) {
    done = true;
    ok = success;
    status = s;
  };
  phone.set_events(std::move(events));
  phone.power_on();
  const auto deadline = bed.sim().now() + seconds(20);
  while (!done && bed.sim().now() < deadline) bed.run_for(milliseconds(20));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(status, 401);
}

}  // namespace
}  // namespace siphoc
