// Tests: the SIPHoc proxy -- binding storage, SLP advertisement, request
// routing, realm crossing (Contact rewrite + SDP ALG), error responses.
#include <gtest/gtest.h>

#include "routing/aodv.hpp"
#include "scenario/scenario.hpp"
#include "siphoc/proxy.hpp"
#include "sip/sdp.hpp"
#include "slp/manet_slp.hpp"

namespace siphoc {
namespace {

using net::Address;
using sip::Message;

/// Two MANET nodes with routing + SLP + proxy; a scripted "phone" socket on
/// the loopback side lets tests inject raw SIP and capture what comes back.
class ProxyFixture : public ::testing::Test {
 protected:
  ProxyFixture() : sim_(19), medium_(sim_, net::RadioConfig{}) {
    for (std::size_t i = 0; i < 2; ++i) {
      hosts_.push_back(std::make_unique<net::Host>(
          sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
      hosts_.back()->attach_radio(
          medium_,
          Address{net::kManetPrefix.value() + static_cast<std::uint32_t>(i) +
                  1},
          std::make_shared<net::StaticMobility>(
              net::Position{50.0 * static_cast<double>(i), 0}));
      daemons_.push_back(std::make_unique<routing::Aodv>(*hosts_.back()));
      dirs_.push_back(std::make_unique<slp::ManetSlp>(
          *hosts_.back(), *daemons_.back(), slp::ManetSlpConfig::for_aodv()));
      daemons_.back()->start();
      proxies_.push_back(
          std::make_unique<SiphocProxy>(*hosts_.back(), *dirs_.back()));
    }
    sim_.run_for(seconds(2));
  }

  /// Binds a fake phone on node `i` port 5070 capturing inbound messages.
  void attach_phone(std::size_t i, std::vector<Message>& inbox) {
    hosts_[i]->bind(5070, [&inbox](const net::Datagram& d,
                                   const net::RxInfo&) {
      auto m = Message::parse(to_string(d.payload));
      if (m) inbox.push_back(std::move(*m));
    });
  }

  /// Sends raw SIP from the fake phone to the local proxy.
  void phone_send(std::size_t i, const Message& m) {
    hosts_[i]->send_udp(5070, {net::kLoopbackAddress, 5060},
                        to_bytes(m.serialize()));
  }

  Message make_register(const std::string& user) {
    Message reg = Message::request("REGISTER",
                                   *sip::Uri::parse("sip:voicehoc.ch"));
    reg.add_header("via", "SIP/2.0/UDP 127.0.0.1:5070;branch=z9hG4bKr" + user);
    reg.add_header("from", "<sip:" + user + "@voicehoc.ch>;tag=1");
    reg.add_header("to", "<sip:" + user + "@voicehoc.ch>");
    reg.add_header("call-id", user + "-reg@test");
    reg.add_header("cseq", "1 REGISTER");
    reg.add_header("contact", "<sip:" + user + "@127.0.0.1:5070>");
    reg.add_header("expires", "3600");
    return reg;
  }

  Message make_invite(const std::string& from, const std::string& to) {
    Message inv =
        Message::request("INVITE", *sip::Uri::parse("sip:" + to));
    inv.add_header("via", "SIP/2.0/UDP 127.0.0.1:5070;branch=z9hG4bKi" + from);
    inv.add_header("from", "<sip:" + from + ">;tag=2");
    inv.add_header("to", "<sip:" + to + ">");
    inv.add_header("call-id", from + "-call@test");
    inv.add_header("cseq", "1 INVITE");
    // Out-of-the-box phones behind a localhost outbound proxy advertise a
    // loopback contact; the proxy must rewrite it on egress.
    inv.add_header("contact", "<sip:phone@127.0.0.1:5070>");
    const sip::Sdp sdp =
        sip::Sdp::audio(hosts_[0]->manet_address(), 8000, 1);
    inv.set_body(sdp.serialize(), std::string(sip::kSdpContentType));
    return inv;
  }

  sim::Simulator sim_;
  net::RadioMedium medium_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<routing::Aodv>> daemons_;
  std::vector<std::unique_ptr<slp::ManetSlp>> dirs_;
  std::vector<std::unique_ptr<SiphocProxy>> proxies_;
};

TEST_F(ProxyFixture, RegisterStoresBindingAndAdvertises) {
  std::vector<Message> inbox;
  attach_phone(0, inbox);
  phone_send(0, make_register("alice"));
  sim_.run_for(milliseconds(100));

  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].status(), 200);
  const auto binding = proxies_[0]->binding("alice");
  ASSERT_TRUE(binding);
  EXPECT_EQ(binding->aor, "alice@voicehoc.ch");
  EXPECT_TRUE(binding->contact.address.is_loopback());

  // Figure 4: the SLP process now owns the contact advertisement.
  const auto snapshot = dirs_[0]->snapshot();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot[0].type, "sip-contact");
  EXPECT_EQ(snapshot[0].key, "alice@voicehoc.ch");
  EXPECT_EQ(snapshot[0].value, "10.0.0.1:5060");
}

TEST_F(ProxyFixture, ExpiresZeroDeregisters) {
  std::vector<Message> inbox;
  attach_phone(0, inbox);
  phone_send(0, make_register("alice"));
  sim_.run_for(milliseconds(100));
  ASSERT_TRUE(proxies_[0]->binding("alice"));

  Message unreg = make_register("alice");
  unreg.set_header("expires", "0");
  unreg.set_header("cseq", "2 REGISTER");
  phone_send(0, unreg);
  sim_.run_for(milliseconds(100));
  EXPECT_FALSE(proxies_[0]->binding("alice"));
  EXPECT_TRUE(dirs_[0]->snapshot().empty());
}

TEST_F(ProxyFixture, InviteResolvedViaSlpAndDelivered) {
  std::vector<Message> alice_inbox, bob_inbox;
  attach_phone(0, alice_inbox);
  attach_phone(1, bob_inbox);
  phone_send(0, make_register("alice"));
  phone_send(1, make_register("bob"));
  sim_.run_for(milliseconds(200));

  phone_send(0, make_invite("alice@voicehoc.ch", "bob@voicehoc.ch"));
  sim_.run_for(seconds(2));

  // The INVITE crossed the MANET and reached Bob's phone (step 8).
  bool bob_got_invite = false;
  for (const auto& m : bob_inbox) {
    if (m.is_request() && m.method() == "INVITE") {
      bob_got_invite = true;
      // Alice's Contact was rewritten from loopback to her proxy endpoint.
      const auto contact = m.contact();
      ASSERT_TRUE(contact);
      EXPECT_EQ(contact->uri.host, "10.0.0.1");
      EXPECT_EQ(contact->uri.port, 5060);
      // Three Vias: Alice's phone, her proxy, and Bob's proxy (which
      // pushed its own when delivering to the local binding).
      EXPECT_EQ(m.vias().size(), 3u);
    }
  }
  EXPECT_TRUE(bob_got_invite);
  EXPECT_EQ(proxies_[0]->stats().slp_hits, 1u);
}

TEST_F(ProxyFixture, ResponseRetracesViaChain) {
  std::vector<Message> alice_inbox, bob_inbox;
  attach_phone(0, alice_inbox);
  attach_phone(1, bob_inbox);
  phone_send(0, make_register("alice"));
  phone_send(1, make_register("bob"));
  sim_.run_for(milliseconds(200));
  phone_send(0, make_invite("alice@voicehoc.ch", "bob@voicehoc.ch"));
  sim_.run_for(seconds(2));
  ASSERT_FALSE(bob_inbox.empty());

  // Bob's phone answers 180; it must reach Alice's phone with both proxy
  // Vias popped.
  Message ringing = Message::response_to(bob_inbox.back(), 180);
  hosts_[1]->send_udp(5070, {net::kLoopbackAddress, 5060},
                      to_bytes(ringing.serialize()));
  sim_.run_for(seconds(1));
  bool alice_got_180 = false;
  for (const auto& m : alice_inbox) {
    if (m.is_response() && m.status() == 180) {
      alice_got_180 = true;
      EXPECT_EQ(m.vias().size(), 1u);  // only the phone's own Via remains
    }
  }
  EXPECT_TRUE(alice_got_180);
}

TEST_F(ProxyFixture, UnknownUserGets404WithoutInternet) {
  std::vector<Message> inbox;
  attach_phone(0, inbox);
  phone_send(0, make_register("alice"));
  sim_.run_for(milliseconds(100));
  inbox.clear();
  phone_send(0, make_invite("alice@voicehoc.ch", "ghost@voicehoc.ch"));
  sim_.run_for(seconds(8));  // SLP lookup must time out first
  bool got_404 = false;
  for (const auto& m : inbox) {
    if (m.is_response() && m.status() == 404) got_404 = true;
  }
  EXPECT_TRUE(got_404);
  EXPECT_EQ(proxies_[0]->stats().not_found, 1u);
}

TEST_F(ProxyFixture, NumericRequestUriForwardsDirectly) {
  std::vector<Message> bob_inbox;
  attach_phone(1, bob_inbox);
  phone_send(1, make_register("bob"));
  sim_.run_for(milliseconds(100));

  // In-dialog style request addressed straight to Bob's proxy endpoint.
  Message bye = Message::request(
      "BYE", *sip::Uri::parse("sip:bob@10.0.0.2:5060"));
  bye.add_header("via", "SIP/2.0/UDP 127.0.0.1:5070;branch=z9hG4bKbye1");
  bye.add_header("from", "<sip:alice@voicehoc.ch>;tag=a");
  bye.add_header("to", "<sip:bob@voicehoc.ch>;tag=b");
  bye.add_header("call-id", "dlg@test");
  bye.add_header("cseq", "2 BYE");
  hosts_[0]->send_udp(5070, {net::kLoopbackAddress, 5060},
                      to_bytes(bye.serialize()));
  sim_.run_for(seconds(2));
  bool bob_got_bye = false;
  for (const auto& m : bob_inbox) {
    if (m.is_request() && m.method() == "BYE") bob_got_bye = true;
  }
  EXPECT_TRUE(bob_got_bye);
}

TEST_F(ProxyFixture, MaxForwardsExhaustedRejected) {
  std::vector<Message> inbox;
  attach_phone(0, inbox);
  Message inv = make_invite("alice@voicehoc.ch", "bob@voicehoc.ch");
  inv.set_max_forwards(0);
  phone_send(0, inv);
  sim_.run_for(seconds(1));
  bool got_483 = false;
  for (const auto& m : inbox) {
    if (m.is_response() && m.status() == 483) got_483 = true;
  }
  EXPECT_TRUE(got_483);
}

TEST_F(ProxyFixture, SdpAlgRewritesTowardInternet) {
  // Directly exercise the egress rewriting by faking Internet presence.
  proxies_[0]->set_internet_address_fn([] { return Address(10, 8, 0, 1); });
  proxies_[0]->set_dns_resolver([](const std::string&) {
    return std::optional<Address>(Address(192, 0, 2, 10));
  });
  // Capture what leaves toward the provider via the tunnel route: install a
  // tunnel iface that records datagrams.
  std::vector<net::Datagram> egress;
  hosts_[0]->attach_tunnel(Address(10, 8, 0, 1), [&](net::Datagram d) {
    egress.push_back(std::move(d));
  });
  hosts_[0]->add_route({net::kInternetPrefix, net::kInternetPrefixLen,
                        std::nullopt, net::Interface::kTunnel, 10});

  phone_send(0, make_register("alice"));
  sim_.run_for(seconds(1));
  phone_send(0, make_invite("alice@voicehoc.ch", "friend@provider.net"));
  sim_.run_for(seconds(8));  // SLP miss -> DNS -> forward

  ASSERT_FALSE(egress.empty());
  bool saw_invite = false;
  for (const auto& d : egress) {
    auto m = Message::parse(to_string(d.payload));
    if (!m || !m->is_request() || m->method() != "INVITE") continue;
    saw_invite = true;
    // Contact rewritten to the Internet-visible endpoint.
    EXPECT_EQ(m->contact()->uri.host, "10.8.0.1");
    // SDP connection address rewritten off the MANET prefix.
    auto sdp = sip::Sdp::parse(m->body());
    ASSERT_TRUE(sdp);
    EXPECT_EQ(sdp->connection, Address(10, 8, 0, 1));
  }
  EXPECT_TRUE(saw_invite);
  EXPECT_EQ(proxies_[0]->stats().internet_forwards, 1u);
}

TEST_F(ProxyFixture, AckNeverAnswered) {
  std::vector<Message> inbox;
  attach_phone(0, inbox);
  Message ack = Message::request(
      "ACK", *sip::Uri::parse("sip:ghost@voicehoc.ch"));
  ack.add_header("via", "SIP/2.0/UDP 127.0.0.1:5070;branch=z9hG4bKack");
  ack.add_header("from", "<sip:alice@voicehoc.ch>;tag=a");
  ack.add_header("to", "<sip:ghost@voicehoc.ch>;tag=g");
  ack.add_header("call-id", "x@test");
  ack.add_header("cseq", "1 ACK");
  phone_send(0, ack);
  sim_.run_for(seconds(8));
  EXPECT_TRUE(inbox.empty());  // no 404 for ACK
}

TEST(ProxyCoalescingTest, RefreshesBatchIntoOneUpstreamBurstPerWindow) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  // Aggressive refresh against a wide window: the phone re-REGISTERs every
  // ~3s, upstream flushes at most once per 20s.
  o.stack.proxy.upstream_refresh_window = seconds(20);
  scenario::Testbed bed(o);
  auto& provider = bed.add_provider("voicehoc.ch");
  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(10));

  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.register_expires = seconds(6);  // refresh at half-lifetime
  auto& phone = bed.add_phone(1, pc);
  ASSERT_TRUE(bed.register_and_wait(phone, seconds(20)));
  const auto upstream_after_first = provider.registers_accepted();
  EXPECT_GE(upstream_after_first, 1u);  // initial REGISTER was relayed live

  bed.run_for(seconds(60));  // ~20 refreshes, at most ~4 windows

  const auto& stats = bed.stack(1).proxy().stats();
  EXPECT_GT(stats.upstream_refreshes_coalesced, 4u);
  EXPECT_GE(stats.upstream_refresh_flushes, 1u);
  // Batching means strictly fewer upstream REGISTERs than refreshes; each
  // flush carries at most one per AOR.
  EXPECT_LT(stats.upstream_registers,
            stats.upstream_refreshes_coalesced);
  EXPECT_LE(provider.registers_accepted() - upstream_after_first,
            stats.upstream_refresh_flushes + 1);
  // The phone never noticed: locally answered 200s kept it registered.
  EXPECT_TRUE(phone.registered());
  EXPECT_TRUE(provider.binding("alice@voicehoc.ch").has_value());
}

}  // namespace
}  // namespace siphoc
