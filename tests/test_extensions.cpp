// Tests: the two extensions beyond the paper's demo --
//   * text messaging over the MANET (SIP MESSAGE, RFC 3428; the intro's
//     "wireless phone and text communicator"), and
//   * the §3.2 open-issue fix: per-domain provisioning of provider
//     outbound proxies so outbound-proxy-requiring providers work.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace siphoc {
namespace {

TEST(TextMessagingTest, TextAcrossMultihopManet) {
  scenario::Options o;
  o.nodes = 4;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  std::string received_text;
  std::string received_from;
  voip::SoftPhoneEvents events;
  events.on_text = [&](const sip::Uri& from, const std::string& text) {
    received_from = from.aor();
    received_text = text;
  };
  bob.set_events(std::move(events));

  bool delivered = false;
  int status = 0;
  alice.send_text("bob@voicehoc.ch", "meet at the north entrance",
                  [&](bool ok, int s) {
                    delivered = ok;
                    status = s;
                  });
  bed.run_for(seconds(5));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(received_text, "meet at the north entrance");
  EXPECT_EQ(received_from, "alice@voicehoc.ch");
}

TEST(TextMessagingTest, TextToUnknownUserFails) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);

  bool done = false, ok = true;
  int status = 0;
  alice.send_text("ghost@voicehoc.ch", "anyone there?", [&](bool o2, int s) {
    done = true;
    ok = o2;
    status = s;
  });
  bed.run_for(seconds(10));  // SLP miss (4 s) then 404
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(status, 404);
}

TEST(TextMessagingTest, TextBothDirectionsConcurrently) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  int alice_got = 0, bob_got = 0;
  voip::SoftPhoneEvents ae, be;
  ae.on_text = [&](const sip::Uri&, const std::string&) { ++alice_got; };
  be.on_text = [&](const sip::Uri&, const std::string&) { ++bob_got; };
  alice.set_events(std::move(ae));
  bob.set_events(std::move(be));

  for (int i = 0; i < 3; ++i) {
    alice.send_text("bob@voicehoc.ch", "ping " + std::to_string(i));
    bob.send_text("alice@voicehoc.ch", "pong " + std::to_string(i));
  }
  bed.run_for(seconds(5));
  EXPECT_EQ(alice_got, 3);
  EXPECT_EQ(bob_got, 3);
}

TEST(OutboundProxyFixTest, ProvisionedProviderProxyMakesPolyphoneWork) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  auto& provider = bed.add_provider("polyphone.ethz.ch",
                                    /*require_outbound_proxy=*/true);
  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(12));
  ASSERT_TRUE(bed.stack(2).internet_available());

  // Provision node 2's SIPHoc proxy with the provider's outbound proxy --
  // the fix for the paper's open issue.
  const auto ob = bed.provider_outbound_proxy("polyphone.ethz.ch");
  ASSERT_TRUE(ob);
  // Rebuild the phone's node proxy config is baked into the stack; instead
  // provision through the running proxy's config surface: the testbed
  // stack was built without it, so exercise the path via a phone whose
  // stack has the mapping -- build a second bed with the option set.
  scenario::Options o2 = o;
  o2.stack.proxy.provider_outbound_proxies["polyphone.ethz.ch"] = *ob;
  scenario::Testbed bed2(o2);
  auto& provider2 = bed2.add_provider("polyphone.ethz.ch", true);
  bed2.start();
  bed2.make_gateway(0);
  bed2.settle(seconds(12));
  ASSERT_TRUE(bed2.stack(2).internet_available());

  const auto ob2 = bed2.provider_outbound_proxy("polyphone.ethz.ch");
  ASSERT_TRUE(ob2);
  // The mapping provisioned above pointed at bed1's endpooint; fix it by
  // asserting both beds allocate identical internet addressing (they do:
  // same construction order), so the endpoint matches.
  ASSERT_EQ(*ob, *ob2);

  auto& phone = bed2.add_phone(2, "carol", "polyphone.ethz.ch");
  bool done = false, ok = false;
  int status = 0;
  voip::SoftPhoneEvents events;
  events.on_registered = [&](bool success, int s) {
    done = true;
    ok = success;
    status = s;
  };
  phone.set_events(std::move(events));
  phone.power_on();
  const auto deadline = bed2.sim().now() + seconds(30);
  while (!done && bed2.sim().now() < deadline) bed2.run_for(milliseconds(20));

  EXPECT_TRUE(done);
  EXPECT_TRUE(ok) << "status " << status;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(provider2.binding_count(), 1u);
  (void)provider;
}

TEST(OutboundProxyFixTest, WithoutProvisioningStillFails403) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.add_provider("polyphone.ethz.ch", true);
  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(10));

  auto& phone = bed.add_phone(1, "carol", "polyphone.ethz.ch");
  bool done = false, ok = true;
  int status = 0;
  voip::SoftPhoneEvents events;
  events.on_registered = [&](bool success, int s) {
    done = true;
    ok = success;
    status = s;
  };
  phone.set_events(std::move(events));
  phone.power_on();
  const auto deadline = bed.sim().now() + seconds(10);
  while (!done && bed.sim().now() < deadline) bed.run_for(milliseconds(20));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(status, 403);
}

TEST(OutboundProxyFixTest, CallThroughProvisionedProviderProxy) {
  // Full call between a MANET user and an Internet user of an
  // outbound-proxy-requiring provider.
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed pre(o);  // discover the ob endpoint deterministically
  pre.add_provider("polyphone.ethz.ch", true);
  const auto ob = pre.provider_outbound_proxy("polyphone.ethz.ch");
  ASSERT_TRUE(ob);

  scenario::Options o2 = o;
  o2.stack.proxy.provider_outbound_proxies["polyphone.ethz.ch"] = *ob;
  scenario::Testbed bed(o2);
  bed.add_provider("polyphone.ethz.ch", true);
  auto& friend_host = bed.add_internet_host("friend");
  voip::SoftPhoneConfig fc;
  fc.username = "friend";
  fc.domain = "polyphone.ethz.ch";
  fc.outbound_proxy = *bed.provider_outbound_proxy("polyphone.ethz.ch");
  voip::SoftPhone friend_phone(friend_host, fc);

  bed.start();
  bed.make_gateway(0);
  auto& carol = bed.add_phone(1, "carol", "polyphone.ethz.ch");
  bed.settle(seconds(10));
  friend_phone.power_on();
  ASSERT_TRUE(bed.register_and_wait(carol, seconds(20)));

  const auto result =
      bed.call_and_wait(carol, "friend@polyphone.ethz.ch", seconds(20));
  EXPECT_TRUE(result.established);
}

}  // namespace
}  // namespace siphoc
