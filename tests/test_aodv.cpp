// Behavioral tests: AODV daemon over the emulated medium.
#include <gtest/gtest.h>

#include "routing/aodv.hpp"

namespace siphoc::routing {
namespace {

using net::Address;

/// N-node chain, 100 m spacing, 120 m range: only neighbors hear each other.
class AodvChain : public ::testing::Test {
 protected:
  void build(std::size_t n, AodvConfig config = {}) {
    sim_ = std::make_unique<sim::Simulator>(7);
    medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
    for (std::size_t i = 0; i < n; ++i) {
      auto host = std::make_unique<net::Host>(
          *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
      host->attach_radio(
          *medium_, addr(i),
          std::make_shared<net::StaticMobility>(
              net::Position{100.0 * static_cast<double>(i), 0}));
      hosts_.push_back(std::move(host));
      daemons_.push_back(std::make_unique<Aodv>(*hosts_.back(), config));
      daemons_.back()->start();
    }
  }

  static Address addr(std::size_t i) {
    return Address{net::kManetPrefix.value() + static_cast<std::uint32_t>(i) +
                   1};
  }

  /// Sends a UDP probe and reports whether it arrived within `wait`.
  bool probe(std::size_t from, std::size_t to, Duration wait = seconds(2)) {
    bool got = false;
    hosts_[to]->bind(9000, [&](const net::Datagram&, const net::RxInfo&) {
      got = true;
    });
    hosts_[from]->send_udp(9000, {addr(to), 9000}, to_bytes("probe"));
    const TimePoint deadline = sim_->now() + wait;
    while (!got && sim_->now() < deadline) sim_->run_for(milliseconds(10));
    hosts_[to]->unbind(9000);
    return got;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<Aodv>> daemons_;
};

TEST_F(AodvChain, DiscoversMultihopRoute) {
  build(5);
  sim_->run_for(seconds(1));
  EXPECT_TRUE(probe(0, 4));
  // Forward route installed at the source, with the right hop count.
  const AodvRoute* route = daemons_[0]->table().active(addr(4), sim_->now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, addr(1));
  EXPECT_EQ(route->hop_count, 4);
  EXPECT_EQ(daemons_[0]->stats().route_discoveries, 1u);
}

TEST_F(AodvChain, SecondSendUsesCachedRoute) {
  build(4);
  sim_->run_for(seconds(1));
  ASSERT_TRUE(probe(0, 3));
  const auto discoveries = daemons_[0]->stats().route_discoveries;
  ASSERT_TRUE(probe(0, 3, milliseconds(500)));
  EXPECT_EQ(daemons_[0]->stats().route_discoveries, discoveries);
}

TEST_F(AodvChain, ReverseRouteEstablishedByDiscovery) {
  build(4);
  sim_->run_for(seconds(1));
  ASSERT_TRUE(probe(0, 3));
  // The destination learned a route back to the originator.
  EXPECT_NE(daemons_[3]->table().active(addr(0), sim_->now()), nullptr);
}

TEST_F(AodvChain, BuffersPacketsDuringDiscovery) {
  build(4);
  sim_->run_for(seconds(1));
  int got = 0;
  hosts_[3]->bind(9000,
                  [&](const net::Datagram&, const net::RxInfo&) { ++got; });
  // Burst before any route exists: all datagrams must be buffered + flushed.
  for (int i = 0; i < 5; ++i) {
    hosts_[0]->send_udp(9000, {addr(3), 9000}, to_bytes("x"));
  }
  EXPECT_GT(daemons_[0]->buffered_count(), 0u);
  sim_->run_for(seconds(2));
  EXPECT_EQ(got, 5);
  EXPECT_EQ(daemons_[0]->buffered_count(), 0u);
}

TEST_F(AodvChain, BufferCapDropsOldest) {
  AodvConfig config;
  config.max_buffered_per_dst = 3;
  build(2, config);
  // No receiver for this dst: point at a nonexistent node so discovery
  // fails and we can observe the cap.
  for (int i = 0; i < 10; ++i) {
    hosts_[0]->send_udp(9000, {Address(10, 0, 0, 200), 9000}, to_bytes("x"));
  }
  EXPECT_LE(daemons_[0]->buffered_count(), 3u);
}

TEST_F(AodvChain, DiscoveryForUnknownNodeFails) {
  build(3);
  sim_->run_for(seconds(1));
  hosts_[0]->send_udp(9000, {Address(10, 0, 0, 200), 9000}, to_bytes("x"));
  sim_->run_for(seconds(30));  // expanding ring + retries must exhaust
  EXPECT_EQ(daemons_[0]->stats().discovery_failures, 1u);
  EXPECT_EQ(daemons_[0]->buffered_count(), 0u);
}

TEST_F(AodvChain, HelloEstablishesNeighborRoutes) {
  build(3);
  sim_->run_for(seconds(3));  // a few HELLO periods
  // 1-hop routes exist without any discovery.
  EXPECT_NE(daemons_[1]->table().active(addr(0), sim_->now()), nullptr);
  EXPECT_NE(daemons_[1]->table().active(addr(2), sim_->now()), nullptr);
  EXPECT_EQ(daemons_[1]->stats().route_discoveries, 0u);
}

TEST_F(AodvChain, LinkBreakTriggersRerrAndReDiscovery) {
  build(5);
  sim_->run_for(seconds(1));
  ASSERT_TRUE(probe(0, 4));
  // Kill node 2 (middle of the path).
  daemons_[2]->stop();
  medium_->set_enabled(2, false);
  sim_->run_for(seconds(5));  // HELLO loss detection
  EXPECT_GT(daemons_[1]->stats().route_errors_sent +
                daemons_[3]->stats().route_errors_sent,
            0u);
  // The chain is severed: traffic to the far end now fails...
  EXPECT_FALSE(probe(0, 4, seconds(3)));
  // ...but reviving the relay lets a fresh discovery succeed.
  medium_->set_enabled(2, true);
  daemons_[2]->start();
  sim_->run_for(seconds(2));
  EXPECT_TRUE(probe(0, 4, seconds(5)));
}

TEST_F(AodvChain, ExpandingRingEventuallyReachesFarNode) {
  AodvConfig config;
  config.ttl_start = 1;
  config.ttl_increment = 1;
  config.ttl_threshold = 3;
  build(7, config);
  sim_->run_for(seconds(1));
  // 6 hops away: several ring expansions needed.
  EXPECT_TRUE(probe(0, 6, seconds(10)));
}

TEST_F(AodvChain, DuplicateRreqSuppressed) {
  build(3);
  sim_->run_for(seconds(1));
  const auto before = medium_->stats().frames_sent;
  ASSERT_TRUE(probe(0, 2));
  const auto frames = medium_->stats().frames_sent - before;
  // 1 RREQ from n0, 1 rebroadcast from n1 (n2 answers), RREP hops back,
  // probe + odd HELLO. Without duplicate suppression this explodes.
  EXPECT_LT(frames, 20u);
}

TEST_F(AodvChain, IntermediateNodeWithFreshRouteReplies) {
  build(5);
  sim_->run_for(seconds(1));
  ASSERT_TRUE(probe(0, 4));  // everyone on the path now has routes to n4
  // n1 asks for n4: n1's neighbor n2 holds a fresh route and may reply on
  // behalf of the destination -- either way discovery must be quick.
  const auto t0 = sim_->now();
  ASSERT_TRUE(probe(1, 4, seconds(1)));
  EXPECT_LT(sim_->now() - t0, seconds(1));
}

TEST_F(AodvChain, StatsAccounting) {
  build(3);
  sim_->run_for(seconds(2));
  const auto& stats = daemons_[0]->stats();
  EXPECT_GT(stats.control_packets_sent, 0u);  // HELLOs at least
  EXPECT_GT(stats.control_bytes_sent, 0u);
}

TEST(AodvTableTest, UpdateRules) {
  AodvTable table;
  const Address dst(10, 0, 0, 9);
  const Address hop1(10, 0, 0, 2);
  const Address hop2(10, 0, 0, 3);
  const TimePoint later = TimePoint{} + seconds(10);

  // Fresh entry accepted.
  EXPECT_NE(table.update(dst, 5, true, 3, hop1, later), nullptr);
  // Older seqno rejected.
  EXPECT_EQ(table.update(dst, 4, true, 1, hop2, later), nullptr);
  EXPECT_EQ(table.find(dst)->next_hop, hop1);
  // Same seqno, fewer hops accepted.
  EXPECT_NE(table.update(dst, 5, true, 2, hop2, later), nullptr);
  EXPECT_EQ(table.find(dst)->next_hop, hop2);
  // Newer seqno always accepted, even with more hops.
  EXPECT_NE(table.update(dst, 6, true, 7, hop1, later), nullptr);
  EXPECT_EQ(table.find(dst)->hop_count, 7);
}

TEST(AodvTableTest, InvalidateBumpsSeqnoAndReportsPrecursors) {
  AodvTable table;
  const Address dst(10, 0, 0, 9);
  table.update(dst, 5, true, 2, Address(10, 0, 0, 2),
               TimePoint{} + seconds(10));
  table.add_precursor(dst, Address(10, 0, 0, 7));
  const auto precursors = table.invalidate(dst);
  ASSERT_EQ(precursors.size(), 1u);
  EXPECT_EQ(precursors[0], Address(10, 0, 0, 7));
  EXPECT_FALSE(table.find(dst)->valid);
  EXPECT_EQ(table.find(dst)->seqno, 6u);
  // Invalidating again is a no-op.
  EXPECT_TRUE(table.invalidate(dst).empty());
}

TEST(AodvTableTest, LinkBreakInvalidatesAllRoutesViaNeighbor) {
  AodvTable table;
  const Address neighbor(10, 0, 0, 2);
  const TimePoint later = TimePoint{} + seconds(10);
  table.update(Address(10, 0, 0, 8), 1, true, 2, neighbor, later);
  table.update(Address(10, 0, 0, 9), 1, true, 3, neighbor, later);
  table.update(Address(10, 0, 0, 4), 1, true, 1, Address(10, 0, 0, 4), later);
  const auto broken = table.on_link_break(neighbor);
  EXPECT_EQ(broken.size(), 2u);
  EXPECT_EQ(table.valid_count(), 1u);
}

TEST(AodvTableTest, ExpiryInvalidates) {
  AodvTable table;
  const Address dst(10, 0, 0, 9);
  table.update(dst, 1, true, 1, dst, TimePoint{} + seconds(1));
  table.expire(TimePoint{} + seconds(2));
  EXPECT_FALSE(table.find(dst)->valid);
  EXPECT_EQ(table.active(dst, TimePoint{} + seconds(2)), nullptr);
}

TEST(AodvTableTest, SeqnoWraparound) {
  AodvTable table;
  const Address dst(10, 0, 0, 9);
  const TimePoint later = TimePoint{} + seconds(10);
  table.update(dst, 0xfffffffe, true, 2, Address(10, 0, 0, 2), later);
  // 1 is "newer" than 0xfffffffe under signed rollover comparison.
  EXPECT_NE(table.update(dst, 1, true, 5, Address(10, 0, 0, 3), later),
            nullptr);
  EXPECT_EQ(table.find(dst)->seqno, 1u);
}

}  // namespace
}  // namespace siphoc::routing
