// Tests: the sharded binding store's lock-free read path under real
// concurrency. Lives in the tsan-labeled binary so `ctest --preset tsan`
// races writer mutations, epoch reclamation and table growth against
// readers under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sip/registrar_store.hpp"

namespace siphoc::sip {
namespace {

TimePoint at(int s) { return TimePoint{} + seconds(s); }

Uri contact_of(int version) {
  return Uri::from_endpoint(
      {net::Address(192, 0, 2, 1 + (version % 200)), 5060}, "u");
}

/// One writer churns bindings (upsert/refresh/erase/purge, forcing table
/// growth and entry retirement) while several readers hammer lookups.
/// Torn reads, use-after-free of retired entries, or races on the table
/// pointer all show up here -- under tsan as reports, without it as
/// crashes or the invariant checks below firing.
TEST(ShardedStoreConcurrency, ReadersNeverBlockAndNeverSeeTornEntries) {
  ShardedBindingStore::Config config;
  config.shards = 4;
  config.initial_capacity = 8;  // guarantee growth while readers run
  ShardedBindingStore store(config);

  constexpr int kKeys = 512;
  constexpr int kWriterRounds = 60;
  const auto key = [](int i) { return "user" + std::to_string(i) + "@x"; };

  // Seed so readers have something to find from the start.
  for (int i = 0; i < kKeys; ++i) {
    store.upsert(key(i), contact_of(0), at(1000));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0}, hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t local_reads = 0, local_hits = 0;
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto found = store.lookup(key(i % kKeys), at(1));
        ++local_reads;
        if (found) {
          ++local_hits;
          // The entry is immutable: whatever version we caught must be
          // internally consistent (contact written by *some* upsert of
          // this key, never a half-written mix).
          EXPECT_EQ(found->contact.user, "u");
          EXPECT_FALSE(found->contact.host.empty());
          EXPECT_GT(found->expires, at(1));
        }
        i += 7;
      }
      reads.fetch_add(local_reads);
      hits.fetch_add(local_hits);
    });
  }

  for (int round = 1; round <= kWriterRounds; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      if ((i + round) % 5 == 0) {
        store.erase(key(i));
      } else {
        store.upsert(key(i), contact_of(round), at(1000 + round));
      }
    }
    store.purge_expired(at(round / 10));
  }
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(hits.load(), 0u);

  // Quiesced state must be exact: every key written in the last round is
  // present with the last round's expiry, every erased key absent.
  for (int i = 0; i < kKeys; ++i) {
    const auto found = store.lookup(key(i), at(1));
    if ((i + kWriterRounds) % 5 == 0) {
      EXPECT_FALSE(found) << key(i);
    } else {
      ASSERT_TRUE(found) << key(i);
      EXPECT_EQ(found->expires, at(1000 + kWriterRounds));
    }
  }
}

/// Concurrent readers over many distinct stores: the thread-local reader
/// slot cache must keep per-store indices apart.
TEST(ShardedStoreConcurrency, ReaderSlotsIsolatedAcrossStores) {
  ShardedBindingStore a, b;
  a.upsert("x@a", contact_of(1), at(100));
  b.upsert("x@b", contact_of(2), at(100));

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        EXPECT_TRUE(a.lookup("x@a", at(1)));
        EXPECT_TRUE(b.lookup("x@b", at(1)));
        EXPECT_FALSE(a.lookup("x@b", at(1)));
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace siphoc::sip
