// Unit tests: single-simulation region sharding (docs/ARCHITECTURE.md).
//
// The contract under test is the strong form of thread-count invariance:
// one simulation, partitioned into region lanes, must produce
// byte-identical results -- call outcomes, merged metrics registry, event
// counts, window accounting -- whether the lanes run inline or across a
// worker pool. `sim_regions` is simulation *content* (like the seed);
// `sim_threads` is pure execution policy. These tests carry the ctest
// label "tsan" so the ThreadSanitizer preset races the real workload.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/context.hpp"
#include "common/metrics.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace siphoc::scenario {
namespace {

struct Workload {
  std::size_t nodes = 9;
  Topology topology = Topology::kGrid;
  double spacing = 80;
  bool mobile = false;
  bool gateway = false;
  std::uint32_t regions = 4;
  unsigned threads = 1;
  std::size_t caller = 0;
  std::size_t callee = 8;
  Duration settle = seconds(5);
};

/// Everything observable about one run. Two runs are "the same simulation"
/// iff every field matches.
struct RunRecord {
  std::string metrics;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t serialized = 0;
  bool registered = false;
  bool established = false;
  Duration setup_time{};

  bool operator==(const RunRecord& o) const {
    return metrics == o.metrics && events == o.events &&
           windows == o.windows && serialized == o.serialized &&
           registered == o.registered && established == o.established &&
           setup_time == o.setup_time;
  }
};

/// A realistic workload: build the MANET, converge OLSR, register two
/// phones, place a multihop call, talk, hang up.
RunRecord run_workload(const Workload& w) {
  SimContext context;
  Options o;
  o.context = &context;
  o.seed = 7;
  o.nodes = w.nodes;
  o.topology = w.topology;
  o.spacing = w.spacing;
  o.area = 300;
  o.routing = RoutingKind::kOlsr;
  o.mobile = w.mobile;
  o.sim_regions = w.regions;
  o.sim_threads = w.threads;
  Testbed bed(o);
  if (w.gateway) {
    bed.make_gateway(0);
    bed.add_provider("voicehoc.ch");
  }
  bed.start();
  auto& alice = bed.add_phone(w.caller, "alice");
  bed.add_phone(w.callee, "bob");
  bed.settle(w.settle);

  RunRecord r;
  r.registered = bed.register_and_wait(alice) &&
                 bed.register_and_wait(bed.phone(1));
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  r.established = call.established;
  r.setup_time = call.setup_time;
  if (call.established) {
    bed.run_for(seconds(3));
    {
      sim::Simulator::LaneScope scope(bed.sim(), bed.node_lane(w.caller));
      alice.hang_up(call.call);
    }
  }
  bed.run_for(seconds(2));
  bed.finalize_metrics();
  r.metrics = bed.ctx().metrics().to_json();
  r.events = bed.sim().events_executed();
  r.windows = bed.sim().windows_run();
  r.serialized = bed.sim().windows_serialized();
  return r;
}

RunRecord at_threads(Workload w, unsigned threads) {
  w.threads = threads;
  return run_workload(w);
}

TEST(ShardedSimTest, ThreadCountDoesNotChangeAnyByte) {
  const Workload w;  // 3x3 OLSR grid, 4 region lanes, corner-to-corner call
  const auto one = at_threads(w, 1);
  const auto two = at_threads(w, 2);
  const auto eight = at_threads(w, 8);

  EXPECT_TRUE(one.registered);
  EXPECT_TRUE(one.established) << "multihop call must survive sharding";
  EXPECT_GT(one.events, 0u);
  EXPECT_TRUE(one == two) << "2 threads diverged from 1";
  EXPECT_TRUE(one == eight) << "8 threads diverged from 1";
  // Ensure the assertion is not vacuous: the run must actually have used
  // concurrent lane windows, not serialized everything.
  EXPECT_GT(one.windows, 0u);
  EXPECT_LT(one.serialized, one.windows);
}

TEST(ShardedSimTest, MobileNodesCrossingRegionsStayIdentical) {
  // Random-waypoint nodes wander across the static region strips; the
  // barrier-epoch position snapshot must keep delivery decisions (and
  // therefore everything downstream) thread-count independent.
  Workload w;
  w.nodes = 10;
  w.topology = Topology::kRandomArea;
  w.mobile = true;
  w.caller = 0;
  w.callee = 9;
  const auto one = at_threads(w, 1);
  const auto two = at_threads(w, 2);
  const auto eight = at_threads(w, 8);

  EXPECT_TRUE(one.registered);
  EXPECT_TRUE(one == two) << "2 threads diverged from 1 (mobile)";
  EXPECT_TRUE(one == eight) << "8 threads diverged from 1 (mobile)";
}

TEST(ShardedSimTest, GatewayAndInternetSerializeCorrectly) {
  // Internet-side machinery (provider registrar, gateway tunnel, wired
  // segment) lives on the scenario lane; windows containing its events
  // serialize. The run must still be byte-identical across thread counts
  // and the registration must reach the provider through the gateway.
  Workload w;
  w.nodes = 5;
  w.topology = Topology::kChain;
  w.gateway = true;
  w.regions = 3;
  w.caller = 1;
  w.callee = 4;
  // Long enough for the gateway to advertise (5 s period), the connection
  // provider to bring up the tunnel, and the REGISTERs to round-trip to
  // the provider over the wired segment.
  w.settle = seconds(15);
  const auto one = at_threads(w, 1);
  const auto four = at_threads(w, 4);

  EXPECT_TRUE(one.registered) << "REGISTER must reach the provider";
  EXPECT_TRUE(one.established);
  EXPECT_TRUE(one == four) << "4 threads diverged from 1 (gateway)";
  EXPECT_GT(one.serialized, 0u) << "Internet events must serialize windows";
}

TEST(ShardedSimTest, RouteHubBatchingIsThreadCountInvariant) {
  // regions == 1: parallel mode without sharding -- one lane, but route
  // recalcs batch through the hub and delivery prefilters may fan out.
  Workload w;
  w.regions = 1;
  const auto one = at_threads(w, 1);
  const auto four = at_threads(w, 4);

  EXPECT_TRUE(one.established);
  EXPECT_TRUE(one == four) << "hub batching diverged across thread counts";
}

TEST(ShardedSimTest, RegionCountIsSimulationContent) {
  // Different region counts are different simulations (lane RNG streams,
  // batching) -- like changing the seed. Document the contract: identity
  // is only promised across thread counts at a fixed region count.
  const Workload w;
  const auto sequential = at_threads([] {
    Workload v;
    v.regions = 0;
    return v;
  }(), 1);
  const auto sharded = at_threads(w, 1);
  // Both must complete the workload even though their bytes differ.
  EXPECT_TRUE(sequential.established);
  EXPECT_TRUE(sharded.established);
  EXPECT_EQ(sequential.windows, 0u) << "regions=0 must use the classic loop";
  EXPECT_GT(sharded.windows, 0u);
}

TEST(ShardedSimTest, RepartitionEquivalenceOnRestart) {
  // Crash and restart a node mid-run under sharding: the rebuilt stack is
  // constructed on the node's home lane, and the run stays identical for
  // any thread count.
  Workload w;
  w.nodes = 6;
  w.topology = Topology::kChain;
  w.regions = 3;
  w.caller = 0;
  w.callee = 5;
  auto chaos = [&](unsigned threads) {
    SimContext context;
    Options o;
    o.context = &context;
    o.seed = 11;
    o.nodes = w.nodes;
    o.topology = w.topology;
    o.spacing = w.spacing;
    o.routing = RoutingKind::kOlsr;
    o.sim_regions = w.regions;
    o.sim_threads = threads;
    Testbed bed(o);
    bed.start();
    bed.settle(seconds(5));
    bed.crash_node(2);
    bed.run_for(seconds(5));
    bed.restart_node(2);
    bed.run_for(seconds(10));
    bed.finalize_metrics();
    return bed.ctx().metrics().to_json() + "\n" +
           std::to_string(bed.sim().events_executed());
  };
  EXPECT_EQ(chaos(1), chaos(2));
  EXPECT_EQ(chaos(1), chaos(8));
}

}  // namespace
}  // namespace siphoc::scenario
