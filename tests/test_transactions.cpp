// Tests: RFC 3261 transaction layer -- retransmission, timeout, matching,
// ACK handling -- over a lossy/lossless two-host wired pair.
#include <gtest/gtest.h>

#include "sip/transaction.hpp"

namespace siphoc::sip {
namespace {

class TransactionFixture : public ::testing::Test {
 protected:
  TransactionFixture()
      : sim_(3),
        internet_(sim_, milliseconds(10)),
        client_host_(sim_, 0, "client"),
        server_host_(sim_, 1, "server") {
    client_host_.attach_wired(internet_, net::Address(192, 0, 2, 1));
    server_host_.attach_wired(internet_, net::Address(192, 0, 2, 2));
    client_transport_ = std::make_unique<Transport>(client_host_, 5060);
    server_transport_ = std::make_unique<Transport>(server_host_, 5060);
    client_ = std::make_unique<TransactionLayer>(*client_transport_,
                                                 "192.0.2.1", 5060);
    server_ = std::make_unique<TransactionLayer>(*server_transport_,
                                                 "192.0.2.2", 5060);
  }

  Message make_request(const std::string& method) {
    Message m = Message::request(method, *Uri::parse("sip:bob@192.0.2.2"));
    m.add_header("from", "<sip:alice@192.0.2.1>;tag=" + client_->new_tag());
    m.add_header("to", "<sip:bob@192.0.2.2>");
    m.add_header("call-id", client_->new_call_id());
    m.add_header("cseq", "1 " + method);
    m.add_header("contact", "<sip:alice@192.0.2.1:5060>");
    return m;
  }

  net::Endpoint server_endpoint() const {
    return {net::Address(192, 0, 2, 2), 5060};
  }

  sim::Simulator sim_;
  net::Internet internet_;
  net::Host client_host_, server_host_;
  std::unique_ptr<Transport> client_transport_, server_transport_;
  std::unique_ptr<TransactionLayer> client_, server_;
};

TEST_F(TransactionFixture, NonInviteRequestResponse) {
  server_->set_request_handler(
      [](std::shared_ptr<ServerTransaction> txn, const Message& req) {
        EXPECT_EQ(req.method(), "OPTIONS");
        txn->respond(200);
      });
  std::vector<int> statuses;
  client_->send_request(make_request("OPTIONS"), server_endpoint(),
                        [&](std::optional<Message> resp) {
                          ASSERT_TRUE(resp);
                          statuses.push_back(resp->status());
                        });
  sim_.run_for(seconds(1));
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], 200);
}

TEST_F(TransactionFixture, BranchIsRfc3261Compliant) {
  Message captured;
  server_->set_request_handler(
      [&](std::shared_ptr<ServerTransaction> txn, const Message& req) {
        captured = req;
        txn->respond(200);
      });
  client_->send_request(make_request("OPTIONS"), server_endpoint(),
                        [](std::optional<Message>) {});
  sim_.run_for(seconds(1));
  const auto via = captured.top_via();
  ASSERT_TRUE(via);
  EXPECT_TRUE(via->branch().starts_with(kBranchCookie));
}

TEST_F(TransactionFixture, InviteFullHandshakeWithAck) {
  bool got_ack = false;
  server_->set_request_handler(
      [&](std::shared_ptr<ServerTransaction> txn, const Message& req) {
        if (req.method() == kAck) return;
        Message ringing = Message::response_to(req, 180);
        auto to = ringing.to();
        to->set_tag("uas-tag");
        ringing.set_header("to", to->to_string());
        txn->respond(std::move(ringing));
        Message ok = Message::response_to(req, 200);
        to = ok.to();
        to->set_tag("uas-tag");
        ok.set_header("to", to->to_string());
        ok.add_header("contact", "<sip:bob@192.0.2.2:5060>");
        txn->on_ack = [&](const Message&) { got_ack = true; };
        txn->respond(std::move(ok));
      });

  std::vector<int> statuses;
  const Message invite = make_request("INVITE");
  client_->send_request(invite, server_endpoint(),
                        [&](std::optional<Message> resp) {
                          ASSERT_TRUE(resp);
                          statuses.push_back(resp->status());
                          if (resp->status() == 200) {
                            // TU duty: ACK the 2xx (new transaction).
                            Message ack = Message::request(
                                std::string(kAck),
                                *Uri::parse("sip:bob@192.0.2.2:5060"));
                            for (const auto& [n, v] : invite.raw_headers()) {
                              if (n == "from" || n == "call-id") {
                                ack.add_header(n, v);
                              }
                            }
                            ack.add_header("to", *resp->header("to"));
                            ack.add_header("cseq", "1 ACK");
                            Via via;
                            via.host = "192.0.2.1";
                            via.params["branch"] = client_->new_branch();
                            ack.push_via(via);
                            client_->send_stateless(ack, server_endpoint());
                          }
                        });
  sim_.run_for(seconds(2));
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0], 180);
  EXPECT_EQ(statuses[1], 200);
  EXPECT_TRUE(got_ack);
}

TEST_F(TransactionFixture, NonInviteTimeoutAfter64T1) {
  // Server silently drops everything.
  server_->set_request_handler([](std::shared_ptr<ServerTransaction>,
                                  const Message&) {});
  bool timed_out = false;
  client_->send_request(make_request("OPTIONS"), server_endpoint(),
                        [&](std::optional<Message> resp) {
                          EXPECT_FALSE(resp);
                          timed_out = true;
                        });
  sim_.run_for(seconds(31));
  EXPECT_FALSE(timed_out);  // 64*T1 = 32 s
  sim_.run_for(seconds(2));
  EXPECT_TRUE(timed_out);
}

TEST_F(TransactionFixture, RetransmissionsSurviveLoss) {
  // Drop 60% of all wired datagrams.
  // (Internet has no loss hook; emulate by a flaky server that answers only
  // the 3rd retransmission.)
  int seen = 0;
  server_->set_request_handler(
      [&](std::shared_ptr<ServerTransaction> txn, const Message&) {
        // The transaction layer absorbs retransmissions, so this fires once;
        // delay the response past several client retransmits instead.
        ++seen;
        sim_.schedule(seconds(3), [txn] { txn->respond(200); });
      });
  bool answered = false;
  client_->send_request(make_request("OPTIONS"), server_endpoint(),
                        [&](std::optional<Message> resp) {
                          ASSERT_TRUE(resp);
                          EXPECT_EQ(resp->status(), 200);
                          answered = true;
                        });
  sim_.run_for(seconds(5));
  EXPECT_TRUE(answered);
  EXPECT_EQ(seen, 1);  // server TU saw the request exactly once
}

TEST_F(TransactionFixture, ServerAbsorbsRetransmittedRequest) {
  int tu_deliveries = 0;
  server_->set_request_handler(
      [&](std::shared_ptr<ServerTransaction> txn, const Message&) {
        ++tu_deliveries;
        txn->respond(486);
      });
  // Client retransmits (Timer E) because... actually the 486 answers fast.
  // Send the same request twice manually to emulate a duplicate in flight.
  Message req = make_request("OPTIONS");
  Via via;
  via.host = "192.0.2.1";
  via.port = 5060;
  via.params["branch"] = "z9hG4bKdup1";
  req.push_via(via);
  client_transport_->send(req, server_endpoint());
  client_transport_->send(req, server_endpoint());
  sim_.run_for(seconds(1));
  EXPECT_EQ(tu_deliveries, 1);
}

TEST_F(TransactionFixture, InviteNon2xxGetsAutomaticAck) {
  int acks = 0;
  server_->set_request_handler(
      [&](std::shared_ptr<ServerTransaction> txn, const Message& req) {
        if (req.method() != kInvite) return;
        Message busy = Message::response_to(req, 486);
        auto to = busy.to();
        to->set_tag("uas");
        busy.set_header("to", to->to_string());
        txn->on_ack = [&](const Message&) { ++acks; };
        txn->respond(std::move(busy));
      });
  int final_status = 0;
  client_->send_request(make_request("INVITE"), server_endpoint(),
                        [&](std::optional<Message> resp) {
                          ASSERT_TRUE(resp);
                          final_status = resp->status();
                        });
  sim_.run_for(seconds(2));
  EXPECT_EQ(final_status, 486);
  EXPECT_EQ(acks, 1);  // the client *transaction* ACKed, not the TU
}

TEST_F(TransactionFixture, StrayResponseGoesToStrayHandler) {
  int strays = 0;
  client_->set_stray_handler([&](const Message&, net::Endpoint) { ++strays; });
  Message resp = Message::parse(
      "SIP/2.0 200 OK\r\n"
      "Via: SIP/2.0/UDP 192.0.2.1:5060;branch=z9hG4bKnosuch\r\n"
      "CSeq: 1 OPTIONS\r\n"
      "\r\n").value();
  server_transport_->send(resp, {net::Address(192, 0, 2, 1), 5060});
  sim_.run_for(seconds(1));
  EXPECT_EQ(strays, 1);
}

TEST_F(TransactionFixture, TransactionsReapAfterCompletion) {
  server_->set_request_handler(
      [](std::shared_ptr<ServerTransaction> txn, const Message&) {
        txn->respond(200);
      });
  client_->send_request(make_request("OPTIONS"), server_endpoint(),
                        [](std::optional<Message>) {});
  sim_.run_for(seconds(1));
  EXPECT_EQ(client_->client_count(), 1u);  // Completed, waiting Timer K
  sim_.run_for(seconds(40));               // K (T4) and J (64*T1) expire
  EXPECT_EQ(client_->client_count(), 0u);
  EXPECT_EQ(server_->server_count(), 0u);
}

TEST_F(TransactionFixture, TagAndCallIdGeneratorsUnique) {
  std::set<std::string> values;
  for (int i = 0; i < 200; ++i) {
    values.insert(client_->new_branch());
    values.insert(client_->new_tag());
    values.insert(client_->new_call_id());
  }
  EXPECT_EQ(values.size(), 600u);
}

}  // namespace
}  // namespace siphoc::sip
