// Property tests over randomized topologies: the routing invariants that
// every higher layer silently depends on.
//
//   P1 (loop freedom): walking FIB next-hops from any node toward any
//       destination never visits a node twice.
//   P2 (path validity): every FIB walk that claims reachability actually
//       terminates at the destination within N hops, and each step is a
//       currently-connected radio link.
//   P3 (MPR coverage): every strict 2-hop neighbor of an OLSR node is
//       covered by at least one of its MPRs.
#include <gtest/gtest.h>

#include "routing/aodv.hpp"
#include "routing/olsr.hpp"

namespace siphoc::routing {
namespace {

using net::Address;

struct RandomNet {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::RadioMedium> medium;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<Protocol>> daemons;

  RandomNet(std::size_t n, bool use_olsr, std::uint64_t seed) {
    sim = std::make_unique<sim::Simulator>(seed);
    medium = std::make_unique<net::RadioMedium>(*sim, net::RadioConfig{});
    Rng placement(seed ^ 0x51c0ull);
    // Dense-ish area keeps the graph connected for most seeds.
    const double side = 60.0 * std::sqrt(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::Host>(
          *sim, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
      hosts.back()->attach_radio(
          *medium,
          Address{net::kManetPrefix.value() + static_cast<std::uint32_t>(i) +
                  1},
          std::make_shared<net::StaticMobility>(net::Position{
              placement.uniform(0, side), placement.uniform(0, side)}));
      if (use_olsr) {
        daemons.push_back(std::make_unique<Olsr>(*hosts.back()));
      } else {
        daemons.push_back(std::make_unique<Aodv>(*hosts.back()));
      }
      daemons.back()->start();
    }
  }

  Address addr(std::size_t i) const {
    return Address{net::kManetPrefix.value() +
                   static_cast<std::uint32_t>(i) + 1};
  }
  std::size_t index_of(Address a) const {
    return (a.value() & 0xff) - 1;
  }

  /// Walks FIB next-hops from `from` toward `to`. Returns hop count, or -1
  /// on no route / loop / dead link.
  int walk(std::size_t from, std::size_t to) {
    std::set<std::size_t> visited;
    std::size_t at = from;
    int hops = 0;
    while (at != to) {
      if (!visited.insert(at).second) return -1;  // loop!
      const auto route = hosts[at]->lookup_route(addr(to));
      if (!route || !route->next_hop) return -1;
      const std::size_t next = index_of(*route->next_hop);
      if (next >= hosts.size()) return -1;
      // The claimed link must physically exist right now.
      if (!medium->connected(static_cast<net::NodeId>(at),
                             static_cast<net::NodeId>(next))) {
        return -1;
      }
      at = next;
      if (++hops > static_cast<int>(hosts.size())) return -1;
    }
    return hops;
  }

  bool reachable_physically(std::size_t from, std::size_t to) {
    // BFS over actual radio connectivity.
    std::set<std::size_t> seen{from};
    std::vector<std::size_t> frontier{from};
    while (!frontier.empty()) {
      std::vector<std::size_t> next;
      for (const auto u : frontier) {
        for (std::size_t v = 0; v < hosts.size(); ++v) {
          if (!seen.contains(v) &&
              medium->connected(static_cast<net::NodeId>(u),
                                static_cast<net::NodeId>(v))) {
            seen.insert(v);
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
    return seen.contains(to);
  }
};

class RoutingProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperties, AodvPathsAreLoopFreeAndValid) {
  RandomNet net(12, /*use_olsr=*/false, GetParam());
  net.sim->run_for(seconds(3));

  // Trigger discoveries between several random pairs by sending probes.
  Rng picks(GetParam() ^ 0xbeef);
  for (int i = 0; i < 8; ++i) {
    const std::size_t from = picks.uniform_int(0, 11);
    const std::size_t to = picks.uniform_int(0, 11);
    if (from == to) continue;
    net.hosts[from]->send_udp(9000, {net.addr(to), 9000}, to_bytes("p"));
    net.sim->run_for(seconds(4));
    if (!net.reachable_physically(from, to)) continue;  // partitioned seed
    const int hops = net.walk(from, to);
    // Either no route was (yet) established, or it is loop-free and valid.
    if (hops >= 0) {
      EXPECT_GE(hops, 1);
      EXPECT_LE(hops, 12);
    }
    // A fresh successful delivery must coincide with a walkable path --
    // checked immediately, before AODV's active-route lifetime can expire.
    bool delivered = false;
    net.hosts[to]->bind(9001, [&](const net::Datagram&, const net::RxInfo&) {
      delivered = true;
    });
    net.hosts[from]->send_udp(9001, {net.addr(to), 9001}, to_bytes("q"));
    const TimePoint deadline = net.sim->now() + seconds(5);
    while (!delivered && net.sim->now() < deadline) {
      net.sim->run_for(milliseconds(10));
    }
    net.hosts[to]->unbind(9001);
    if (delivered) {
      EXPECT_GE(net.walk(from, to), 1)
          << "delivered but FIB walk failed: n" << from << " -> n" << to;
    }
  }
}

TEST_P(RoutingProperties, OlsrRoutesLoopFreeAndCompleteOnConnectedGraph) {
  RandomNet net(10, /*use_olsr=*/true, GetParam());
  net.sim->run_for(seconds(25));

  for (std::size_t from = 0; from < 10; ++from) {
    for (std::size_t to = 0; to < 10; ++to) {
      if (from == to) continue;
      if (!net.reachable_physically(from, to)) continue;
      const int hops = net.walk(from, to);
      EXPECT_GE(hops, 1) << "n" << from << " cannot walk to n" << to;
      EXPECT_LE(hops, 10);
    }
  }
}

TEST_P(RoutingProperties, OlsrMprsCoverTwoHopNeighborhood) {
  RandomNet net(10, /*use_olsr=*/true, GetParam());
  net.sim->run_for(seconds(25));

  for (std::size_t i = 0; i < 10; ++i) {
    auto* olsr = dynamic_cast<Olsr*>(net.daemons[i].get());
    ASSERT_NE(olsr, nullptr);
    const auto neighbors = olsr->symmetric_neighbors();
    const auto& mprs = olsr->mpr_set();
    // Strict two-hop nodes (by physical connectivity among converged
    // symmetric links).
    for (std::size_t t = 0; t < 10; ++t) {
      if (t == i) continue;
      const Address t_addr = net.addr(t);
      if (neighbors.contains(t_addr)) continue;
      // Is t physically adjacent to one of our symmetric neighbors?
      bool is_two_hop = false;
      bool covered = false;
      for (const auto& n : neighbors) {
        const std::size_t n_idx = net.index_of(n);
        if (net.medium->connected(static_cast<net::NodeId>(n_idx),
                                  static_cast<net::NodeId>(t))) {
          is_two_hop = true;
          if (mprs.contains(n)) covered = true;
        }
      }
      if (is_two_hop) {
        EXPECT_TRUE(covered)
            << "node n" << i << ": two-hop n" << t << " uncovered by MPRs";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperties,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace siphoc::routing
