// Unit tests: addressing, packets, radio medium, mobility, host stack.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "net/host.hpp"
#include "net/internet.hpp"

namespace siphoc::net {
namespace {

TEST(AddressTest, ParseAndFormat) {
  const auto a = Address::parse("10.0.0.5");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "10.0.0.5");
  EXPECT_EQ(a->value(), 0x0a000005u);
  EXPECT_FALSE(Address::parse("10.0.0"));
  EXPECT_FALSE(Address::parse("10.0.0.256"));
  EXPECT_FALSE(Address::parse("10.0.0.x"));
  EXPECT_FALSE(Address::parse(""));
}

TEST(AddressTest, Predicates) {
  EXPECT_TRUE(kBroadcastAddress.is_broadcast());
  EXPECT_TRUE(kLoopbackAddress.is_loopback());
  EXPECT_TRUE(Address{}.is_unspecified());
  EXPECT_TRUE(Address(10, 0, 0, 7).in_prefix(kManetPrefix, kManetPrefixLen));
  EXPECT_FALSE(
      Address(10, 8, 0, 7).in_prefix(kManetPrefix, kManetPrefixLen));
  EXPECT_TRUE(Address(10, 8, 0, 7).in_prefix(kTunnelPrefix, kTunnelPrefixLen));
  EXPECT_TRUE(Address(1, 2, 3, 4).in_prefix(Address{}, 0));
}

TEST(EndpointTest, ParseAndFormat) {
  const auto e = Endpoint::parse("192.0.2.10:5060");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->address, Address(192, 0, 2, 10));
  EXPECT_EQ(e->port, 5060);
  EXPECT_EQ(e->to_string(), "192.0.2.10:5060");
  EXPECT_FALSE(Endpoint::parse("192.0.2.10"));
  EXPECT_FALSE(Endpoint::parse("192.0.2.10:99999"));
}

TEST(DatagramTest, EncodeDecodeRoundTrip) {
  Datagram d;
  d.src = Address(10, 0, 0, 1);
  d.dst = Address(10, 0, 0, 2);
  d.src_port = 5060;
  d.dst_port = 8000;
  d.ttl = 7;
  d.payload = {1, 2, 3, 4, 5};
  const auto decoded = Datagram::decode(d.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->src, d.src);
  EXPECT_EQ(decoded->dst, d.dst);
  EXPECT_EQ(decoded->src_port, d.src_port);
  EXPECT_EQ(decoded->dst_port, d.dst_port);
  EXPECT_EQ(decoded->ttl, d.ttl);
  EXPECT_EQ(decoded->payload, d.payload);
}

TEST(DatagramTest, DecodeTruncatedFails) {
  Datagram d;
  d.payload = {1, 2, 3};
  auto wire = d.encode();
  wire.pop_back();
  EXPECT_FALSE(Datagram::decode(wire));
}

TEST(MobilityTest, StaticStaysPut) {
  StaticMobility m({3, 4});
  EXPECT_DOUBLE_EQ(m.position_at(TimePoint{} + seconds(100)).x, 3);
}

TEST(MobilityTest, RandomWaypointStaysInArea) {
  RandomWaypointConfig config;
  config.width = 100;
  config.height = 50;
  RandomWaypointMobility m({10, 10}, config, Rng(5));
  for (int i = 0; i < 500; ++i) {
    const auto p = m.position_at(TimePoint{} + seconds(i));
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 100);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 50);
  }
}

TEST(MobilityTest, RandomWaypointActuallyMoves) {
  RandomWaypointConfig config;
  RandomWaypointMobility m({0, 0}, config, Rng(5));
  const auto p0 = m.position_at(TimePoint{} + seconds(10));
  const auto p1 = m.position_at(TimePoint{} + seconds(60));
  EXPECT_GT(distance(p0, p1), 0.0);
}

TEST(MobilityTest, TopologyHelpers) {
  const auto chain = chain_positions(4, 50);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_DOUBLE_EQ(chain[3].x, 150);
  const auto grid = grid_positions(9, 10);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_DOUBLE_EQ(grid[4].x, 10);
  EXPECT_DOUBLE_EQ(grid[4].y, 10);
}

// --- medium + host fixtures ------------------------------------------------

class TwoNodeFixture : public ::testing::Test {
 protected:
  TwoNodeFixture()
      : sim_(1), medium_(sim_, RadioConfig{}),
        a_(sim_, 0, "a"), b_(sim_, 1, "b") {
    a_.attach_radio(medium_, Address(10, 0, 0, 1),
                    std::make_shared<StaticMobility>(Position{0, 0}));
    b_.attach_radio(medium_, Address(10, 0, 0, 2),
                    std::make_shared<StaticMobility>(Position{50, 0}));
  }
  sim::Simulator sim_;
  RadioMedium medium_;
  Host a_, b_;
};

TEST_F(TwoNodeFixture, UnicastInRangeDelivers) {
  std::string got;
  b_.bind(9000, [&](const Datagram& d, const RxInfo& info) {
    got = to_string(d.payload);
    EXPECT_EQ(info.iface, Interface::kRadio);
    EXPECT_EQ(info.prev_hop_mac, 0u);
  });
  a_.send_udp(9000, {Address(10, 0, 0, 2), 9000}, to_bytes("hi"));
  sim_.run_for(milliseconds(10));
  EXPECT_EQ(got, "hi");
  EXPECT_EQ(medium_.stats().frames_delivered, 1u);
}

TEST_F(TwoNodeFixture, BroadcastReachesNeighbors) {
  int got = 0;
  b_.bind(9000, [&](const Datagram& d, const RxInfo&) {
    EXPECT_TRUE(d.dst.is_broadcast());
    ++got;
  });
  a_.send_broadcast(9000, 9000, to_bytes("hello"));
  sim_.run_for(milliseconds(10));
  EXPECT_EQ(got, 1);
}

TEST_F(TwoNodeFixture, OutOfRangeNotDelivered) {
  // Move b beyond the 120 m default range.
  b_.attach_radio(medium_, Address(10, 0, 0, 2),
                  std::make_shared<StaticMobility>(Position{500, 0}));
  int got = 0;
  b_.bind(9000, [&](const Datagram&, const RxInfo&) { ++got; });
  a_.send_broadcast(9000, 9000, to_bytes("x"));
  sim_.run_for(milliseconds(10));
  EXPECT_EQ(got, 0);
}

TEST_F(TwoNodeFixture, UnicastFailureFeedback) {
  int failures = 0;
  a_.set_link_failure_listener([&](const Frame&) { ++failures; });
  // No route entry needed: on-link /24. Send to a host that is not there.
  a_.send_udp(9000, {Address(10, 0, 0, 99), 9000}, to_bytes("x"));
  sim_.run_for(milliseconds(10));
  // Unresolvable ARP -> drop, not link failure; now use an out-of-range mac:
  b_.attach_radio(medium_, Address(10, 0, 0, 2),
                  std::make_shared<StaticMobility>(Position{500, 0}));
  a_.send_udp(9000, {Address(10, 0, 0, 2), 9000}, to_bytes("x"));
  sim_.run_for(milliseconds(10));
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(medium_.stats().unicast_unreachable, 1u);
}

TEST_F(TwoNodeFixture, LinkFilterForcesMultihop) {
  // The paper's firewall trick: forbid the direct a<->b link.
  medium_.set_link_filter([](NodeId x, NodeId y) {
    return !((x == 0 && y == 1) || (x == 1 && y == 0));
  });
  int got = 0;
  b_.bind(9000, [&](const Datagram&, const RxInfo&) { ++got; });
  a_.send_broadcast(9000, 9000, to_bytes("x"));
  sim_.run_for(milliseconds(10));
  EXPECT_EQ(got, 0);
  EXPECT_FALSE(medium_.connected(0, 1));
}

TEST_F(TwoNodeFixture, LoopbackDelivery) {
  std::string got;
  a_.bind(5060, [&](const Datagram& d, const RxInfo& info) {
    got = to_string(d.payload);
    EXPECT_EQ(info.iface, Interface::kLoopback);
  });
  a_.send_udp(5070, {kLoopbackAddress, 5060}, to_bytes("local"));
  sim_.run_for(milliseconds(1));
  EXPECT_EQ(got, "local");
}

TEST_F(TwoNodeFixture, LossyMediumDropsSometimes) {
  sim::Simulator sim2(7);
  RadioConfig lossy;
  lossy.loss_probability = 0.5;
  RadioMedium medium2(sim2, lossy);
  Host x(sim2, 0, "x"), y(sim2, 1, "y");
  x.attach_radio(medium2, Address(10, 0, 0, 1),
                 std::make_shared<StaticMobility>(Position{0, 0}));
  y.attach_radio(medium2, Address(10, 0, 0, 2),
                 std::make_shared<StaticMobility>(Position{10, 0}));
  int got = 0;
  y.bind(9000, [&](const Datagram&, const RxInfo&) { ++got; });
  for (int i = 0; i < 200; ++i) {
    x.send_broadcast(9000, 9000, to_bytes("x"));
    sim2.run_for(milliseconds(5));
  }
  EXPECT_GT(got, 50);
  EXPECT_LT(got, 150);
}

// The spatial grid in RadioMedium is an exactness-preserving index: for any
// mix of fixed and mobile nodes, disabled radios, and detachments, the
// broadcast delivery set must equal what a brute-force all-pairs range scan
// computes. Loss is disabled so delivery is deterministic.
TEST(RadioMediumTest, GridMatchesBruteForceDeliverySets) {
  sim::Simulator sim(3);
  RadioConfig config;
  config.loss_probability = 0;
  RadioMedium medium(sim, config);

  std::mt19937 rng(99);
  std::uniform_real_distribution<double> coord(0.0, 600.0);

  constexpr int kNodes = 40;
  constexpr int kDisabled = 5;
  constexpr int kDetached = 7;
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<std::shared_ptr<MobilityModel>> mobility;
  std::vector<int> received(kNodes, 0);
  for (int i = 0; i < kNodes; ++i) {
    hosts.push_back(
        std::make_unique<Host>(sim, i, "n" + std::to_string(i)));
    std::shared_ptr<MobilityModel> m;
    if (i % 2 == 0) {
      m = std::make_shared<StaticMobility>(Position{coord(rng), coord(rng)});
    } else {
      RandomWaypointConfig rw;
      rw.width = 600;
      rw.height = 600;
      m = std::make_shared<RandomWaypointMobility>(
          Position{coord(rng), coord(rng)}, rw, Rng(1000 + i));
    }
    mobility.push_back(m);
    hosts[i]->attach_radio(medium, Address(10, 0, 0, i + 1), m);
    hosts[i]->bind(9000, [&received, i](const Datagram&, const RxInfo&) {
      ++received[i];
    });
  }
  medium.set_enabled(kDisabled, false);

  bool detached = false;
  for (int round = 0; round < 20; ++round) {
    if (round == 10) {
      medium.detach(kDetached);
      detached = true;
    }
    const int s = round % kNodes;
    // Brute-force expectation from positions at transmit time (transmit is
    // synchronous inside send_broadcast, so these are the exact positions
    // the medium sees).
    std::vector<Position> pos(kNodes);
    for (int i = 0; i < kNodes; ++i) {
      pos[i] = mobility[i]->position_at(sim.now());
    }
    const bool sender_up = s != kDisabled && !(detached && s == kDetached);
    std::vector<int> expected(kNodes, 0);
    if (sender_up) {
      for (int i = 0; i < kNodes; ++i) {
        if (i == s || i == kDisabled) continue;
        if (detached && i == kDetached) continue;
        if (distance(pos[s], pos[i]) <= config.range) expected[i] = 1;
      }
    }
    std::vector<int> before = received;
    hosts[s]->send_broadcast(9000, 9000, to_bytes("probe"));
    sim.run_for(milliseconds(20));
    for (int i = 0; i < kNodes; ++i) {
      EXPECT_EQ(received[i] - before[i], expected[i])
          << "round " << round << " sender " << s << " receiver " << i;
    }
    // Let the mobile half wander between rounds.
    sim.run_for(seconds(5));
  }
  // Guard against a vacuous pass: the topology must produce deliveries.
  int total = 0;
  for (int i = 0; i < kNodes; ++i) total += received[i];
  EXPECT_GT(total, 0);
  EXPECT_GT(medium.stats().frames_delivered, 0u);
}

TEST_F(TwoNodeFixture, ForwardingDecrementsTtl) {
  // Three hosts in a chain with explicit routes: a -> b -> c.
  Host c(sim_, 2, "c");
  c.attach_radio(medium_, Address(10, 0, 0, 3),
                 std::make_shared<StaticMobility>(Position{100, 0}));
  a_.add_route({Address(10, 0, 0, 3), 32, Address(10, 0, 0, 2),
                Interface::kRadio, 2});
  std::uint8_t seen_ttl = 0;
  c.bind(9000, [&](const Datagram& d, const RxInfo&) { seen_ttl = d.ttl; });
  a_.send_udp(9000, {Address(10, 0, 0, 3), 9000}, to_bytes("x"));
  sim_.run_for(milliseconds(10));
  EXPECT_EQ(seen_ttl, kDefaultTtl - 1);
  EXPECT_EQ(b_.stats().forwarded, 1u);
}

TEST_F(TwoNodeFixture, LongestPrefixMatchWins) {
  a_.add_route({Address(10, 0, 0, 0), 24, std::nullopt, Interface::kRadio, 5});
  a_.add_route({Address(10, 0, 0, 2), 32, Address(10, 0, 0, 2),
                Interface::kRadio, 9});
  const auto r = a_.lookup_route(Address(10, 0, 0, 2));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->prefix_len, 32);
}

TEST_F(TwoNodeFixture, RouteResolverClaimsUnroutable) {
  int claimed = 0;
  a_.set_route_resolver([&](Datagram) {
    ++claimed;
    return true;
  });
  a_.send_udp(9000, {Address(172, 16, 0, 1), 9000}, to_bytes("x"));
  sim_.run_for(milliseconds(1));
  EXPECT_EQ(claimed, 1);
  EXPECT_EQ(a_.stats().no_route_drops, 0u);
}

TEST(InternetTest, DeliversByAddressWithLatency) {
  sim::Simulator sim;
  Internet internet(sim, milliseconds(30));
  Datagram got;
  int count = 0;
  internet.attach(Address(192, 0, 2, 1), [&](const Datagram& d) {
    got = d;
    ++count;
  });
  Datagram d;
  d.src = Address(192, 0, 2, 2);
  d.dst = Address(192, 0, 2, 1);
  d.payload = to_bytes("web");
  internet.send(d);
  sim.run_for(milliseconds(10));
  EXPECT_EQ(count, 0);  // still in flight
  sim.run_for(milliseconds(25));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(to_string(got.payload), "web");
}

TEST(InternetTest, UnknownAddressDropped) {
  sim::Simulator sim;
  Internet internet(sim);
  Datagram d;
  d.dst = Address(192, 0, 2, 99);
  internet.send(d);
  sim.run_to_completion();
  EXPECT_EQ(internet.datagrams_dropped(), 1u);
}

TEST(InternetTest, DnsResolution) {
  sim::Simulator sim;
  Internet internet(sim);
  internet.register_domain("voicehoc.ch", Address(192, 0, 2, 10));
  const auto a = internet.resolve("voicehoc.ch");
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, Address(192, 0, 2, 10));
  EXPECT_FALSE(internet.resolve("unknown.example"));
}

TEST(InternetTest, WiredHostSendsAndReceives) {
  sim::Simulator sim;
  Internet internet(sim);
  Host a(sim, 0, "a"), b(sim, 1, "b");
  a.attach_wired(internet, Address(192, 0, 2, 1));
  b.attach_wired(internet, Address(192, 0, 2, 2));
  std::string got;
  b.bind(5060, [&](const Datagram& d, const RxInfo& info) {
    got = to_string(d.payload);
    EXPECT_EQ(info.iface, Interface::kWired);
  });
  a.send_udp(5060, {Address(192, 0, 2, 2), 5060}, to_bytes("sip"));
  sim.run_for(milliseconds(100));
  EXPECT_EQ(got, "sip");
}

}  // namespace
}  // namespace siphoc::net
