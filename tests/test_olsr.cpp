// Behavioral tests: OLSR daemon -- link sensing, MPR selection, topology
// dissemination, route computation.
#include <gtest/gtest.h>

#include "routing/olsr.hpp"

namespace siphoc::routing {
namespace {

using net::Address;

class OlsrNet : public ::testing::Test {
 protected:
  void build(const std::vector<net::Position>& positions,
             OlsrConfig config = {}) {
    sim_ = std::make_unique<sim::Simulator>(11);
    medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      auto host = std::make_unique<net::Host>(
          *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
      host->attach_radio(*medium_, addr(i),
                         std::make_shared<net::StaticMobility>(positions[i]));
      hosts_.push_back(std::move(host));
      daemons_.push_back(std::make_unique<Olsr>(*hosts_.back(), config));
      daemons_.back()->start();
    }
  }

  static Address addr(std::size_t i) {
    return Address{net::kManetPrefix.value() + static_cast<std::uint32_t>(i) +
                   1};
  }

  bool probe(std::size_t from, std::size_t to, Duration wait = seconds(1)) {
    bool got = false;
    hosts_[to]->bind(9000, [&](const net::Datagram&, const net::RxInfo&) {
      got = true;
    });
    hosts_[from]->send_udp(9000, {addr(to), 9000}, to_bytes("probe"));
    const TimePoint deadline = sim_->now() + wait;
    while (!got && sim_->now() < deadline) sim_->run_for(milliseconds(10));
    hosts_[to]->unbind(9000);
    return got;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<Olsr>> daemons_;
};

TEST_F(OlsrNet, SymmetricNeighborsAfterHelloExchange) {
  build(net::chain_positions(3, 100));
  sim_->run_for(seconds(6));
  EXPECT_TRUE(daemons_[0]->symmetric_neighbors().contains(addr(1)));
  EXPECT_FALSE(daemons_[0]->symmetric_neighbors().contains(addr(2)));
  EXPECT_EQ(daemons_[1]->symmetric_neighbors().size(), 2u);
}

TEST_F(OlsrNet, MiddleNodeBecomesMpr) {
  build(net::chain_positions(3, 100));
  sim_->run_for(seconds(8));
  // n0 must reach two-hop n2 through n1: n1 is n0's only possible MPR.
  EXPECT_TRUE(daemons_[0]->mpr_set().contains(addr(1)));
  EXPECT_TRUE(daemons_[1]->mpr_selectors().contains(addr(0)));
}

TEST_F(OlsrNet, RoutesConvergeOnChain) {
  build(net::chain_positions(5, 100));
  sim_->run_for(seconds(15));
  // Every node can reach every other node.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(daemons_[i]->has_route(addr(j)))
          << "n" << i << " has no route to n" << j;
    }
  }
  EXPECT_TRUE(probe(0, 4));
  EXPECT_TRUE(probe(4, 0));
}

TEST_F(OlsrNet, HopCountsAreShortestPath) {
  build(net::chain_positions(5, 100));
  sim_->run_for(seconds(15));
  const auto route = hosts_[0]->lookup_route(addr(4));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->metric, 4);  // metric carries the hop count
  EXPECT_EQ(route->next_hop, addr(1));
}

TEST_F(OlsrNet, GridConvergesAndRoutesAreUsable) {
  build(net::grid_positions(9, 100));
  sim_->run_for(seconds(20));
  EXPECT_TRUE(probe(0, 8));  // corner to corner
  EXPECT_TRUE(probe(2, 6));
  // Full coverage from node 0.
  for (std::size_t j = 1; j < 9; ++j) {
    EXPECT_TRUE(daemons_[0]->has_route(addr(j))) << "no route to n" << j;
  }
}

TEST_F(OlsrNet, MprCountStaysSmallInDenseNetwork) {
  // All 8 nodes within range of each other: no two-hop nodes, so no MPRs
  // are needed at all.
  std::vector<net::Position> cluster;
  for (int i = 0; i < 8; ++i) {
    cluster.push_back({static_cast<double>(i) * 10.0, 0});
  }
  build(cluster);
  sim_->run_for(seconds(15));
  for (const auto& d : daemons_) {
    EXPECT_TRUE(d->mpr_set().empty());
    EXPECT_EQ(d->symmetric_neighbors().size(), 7u);
  }
}

TEST_F(OlsrNet, DeadNeighborExpires) {
  build(net::chain_positions(3, 100));
  sim_->run_for(seconds(10));
  ASSERT_TRUE(daemons_[0]->symmetric_neighbors().contains(addr(1)));
  medium_->set_enabled(1, false);
  sim_->run_for(seconds(10));  // neighbor_hold = 6 s
  EXPECT_FALSE(daemons_[0]->symmetric_neighbors().contains(addr(1)));
  EXPECT_FALSE(daemons_[0]->has_route(addr(2)));
}

TEST_F(OlsrNet, TopologyRepairsAfterNodeReturns) {
  build(net::chain_positions(4, 100));
  sim_->run_for(seconds(15));
  ASSERT_TRUE(probe(0, 3));
  medium_->set_enabled(1, false);
  sim_->run_for(seconds(12));
  EXPECT_FALSE(probe(0, 3, seconds(1)));
  medium_->set_enabled(1, true);
  sim_->run_for(seconds(15));
  EXPECT_TRUE(probe(0, 3));
}

TEST_F(OlsrNet, PiggybackSeamFiresOnHelloAndTc) {
  struct Recorder final : RoutingHandler {
    int hello_out = 0, tc_out = 0, hello_in = 0;
    Bytes on_outgoing(const PacketInfo& info) override {
      if (info.kind == PacketKind::kOlsrHello) {
        ++hello_out;
        return to_bytes("H");
      }
      ++tc_out;
      return to_bytes("T");
    }
    HandlerVerdict on_incoming(const PacketInfo& info,
                               std::span<const std::uint8_t>,
                               net::Address) override {
      if (info.kind == PacketKind::kOlsrHello) ++hello_in;
      return {};
    }
  };
  build(net::chain_positions(2, 100));
  Recorder recorder;
  daemons_[0]->set_handler(&recorder);
  sim_->run_for(seconds(10));
  EXPECT_GT(recorder.hello_out, 2);
  EXPECT_GT(recorder.tc_out, 0);  // payload forces TC even without selectors
  EXPECT_GT(recorder.hello_in, 2);
  daemons_[0]->set_handler(nullptr);
}

TEST_F(OlsrNet, TcExtensionFloodsNetworkWide) {
  struct Sink final : RoutingHandler {
    std::string seen;
    Bytes on_outgoing(const PacketInfo&) override { return {}; }
    HandlerVerdict on_incoming(const PacketInfo& info,
                               std::span<const std::uint8_t> ext,
                               net::Address) override {
      if (info.kind == PacketKind::kOlsrTc && !ext.empty()) {
        seen = siphoc::to_string(ext);  // routing::to_string shadows it
      }
      return {};
    }
  };
  struct Source final : RoutingHandler {
    Bytes on_outgoing(const PacketInfo& info) override {
      return info.kind == PacketKind::kOlsrTc ? to_bytes("adv-from-n0")
                                              : Bytes{};
    }
    HandlerVerdict on_incoming(const PacketInfo&,
                               std::span<const std::uint8_t>,
                               net::Address) override {
      return {};
    }
  };
  build(net::chain_positions(5, 100));
  Source source;
  Sink sink;
  daemons_[0]->set_handler(&source);
  daemons_[4]->set_handler(&sink);
  sim_->run_for(seconds(25));
  // Four hops away, reachable only through MPR forwarding of TC messages.
  EXPECT_EQ(sink.seen, "adv-from-n0");
  daemons_[0]->set_handler(nullptr);
  daemons_[4]->set_handler(nullptr);
}

TEST_F(OlsrNet, NudgeAdvertisementEmitsImmediately) {
  build(net::chain_positions(2, 100));
  sim_->run_for(seconds(5));
  const auto before = daemons_[0]->stats().control_packets_sent;
  daemons_[0]->nudge_advertisement();
  EXPECT_GT(daemons_[0]->stats().control_packets_sent, before);
}

}  // namespace
}  // namespace siphoc::routing
