// Unit tests: AODV and OLSR wire codecs, including fuzz-style robustness.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "routing/aodv_codec.hpp"
#include "routing/olsr_codec.hpp"

namespace siphoc::routing {
namespace {

using net::Address;

TEST(AodvCodecTest, RreqRoundTrip) {
  aodv::Rreq m;
  m.hop_count = 3;
  m.ttl = 12;
  m.rreq_id = 77;
  m.dst = Address(10, 0, 0, 9);
  m.dst_seqno = 42;
  m.unknown_seqno = false;
  m.orig = Address(10, 0, 0, 1);
  m.orig_seqno = 100;

  Bytes ext = {1, 2, 3};
  const Bytes wire = aodv::encode(m, ext);
  auto decoded = aodv::decode(wire);
  ASSERT_TRUE(decoded);
  const auto* rreq = std::get_if<aodv::Rreq>(&decoded->message);
  ASSERT_NE(rreq, nullptr);
  EXPECT_EQ(rreq->hop_count, 3);
  EXPECT_EQ(rreq->ttl, 12);
  EXPECT_EQ(rreq->rreq_id, 77u);
  EXPECT_EQ(rreq->dst, m.dst);
  EXPECT_EQ(rreq->dst_seqno, 42u);
  EXPECT_FALSE(rreq->unknown_seqno);
  EXPECT_EQ(rreq->orig, m.orig);
  EXPECT_EQ(rreq->orig_seqno, 100u);
  EXPECT_EQ(decoded->extension, ext);
}

TEST(AodvCodecTest, RrepRoundTrip) {
  aodv::Rrep m;
  m.hop_count = 2;
  m.dst = Address(10, 0, 0, 5);
  m.dst_seqno = 9;
  m.orig = Address(10, 0, 0, 1);
  m.lifetime_ms = 6000;
  const auto decoded = aodv::decode(aodv::encode(m, {}));
  ASSERT_TRUE(decoded);
  const auto* rrep = std::get_if<aodv::Rrep>(&decoded->message);
  ASSERT_NE(rrep, nullptr);
  EXPECT_EQ(rrep->lifetime_ms, 6000u);
  EXPECT_FALSE(rrep->is_hello);
  EXPECT_TRUE(decoded->extension.empty());
}

TEST(AodvCodecTest, HelloFlagSurvives) {
  aodv::Rrep hello;
  hello.is_hello = true;
  hello.dst = Address(10, 0, 0, 2);
  const auto decoded = aodv::decode(aodv::encode(hello, {}));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(std::get<aodv::Rrep>(decoded->message).is_hello);
}

TEST(AodvCodecTest, RerrRoundTrip) {
  aodv::Rerr m;
  m.destinations.push_back({Address(10, 0, 0, 3), 11});
  m.destinations.push_back({Address(10, 0, 0, 4), 12});
  const auto decoded = aodv::decode(aodv::encode(m, {}));
  ASSERT_TRUE(decoded);
  const auto& rerr = std::get<aodv::Rerr>(decoded->message);
  ASSERT_EQ(rerr.destinations.size(), 2u);
  EXPECT_EQ(rerr.destinations[1].seqno, 12u);
}

TEST(AodvCodecTest, EmptyAndUnknownTypeRejected) {
  EXPECT_FALSE(aodv::decode(Bytes{}));
  EXPECT_FALSE(aodv::decode(Bytes{0x99}));
}

TEST(AodvCodecTest, TruncationRejectedAtEveryLength) {
  aodv::Rreq m;
  m.dst = Address(10, 0, 0, 9);
  const Bytes ext = {7, 7, 7};
  const Bytes wire = aodv::encode(m, ext);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(aodv::decode(std::span(wire.data(), len)))
        << "length " << len << " should not decode";
  }
  EXPECT_TRUE(aodv::decode(wire));
}

TEST(AodvCodecTest, RandomBytesNeverCrash) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.uniform_int(0, 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)aodv::decode(junk);  // must return error or garbage, never UB
  }
  SUCCEED();
}

TEST(AodvCodecTest, Describe) {
  aodv::Rreq service;
  service.rreq_id = 5;
  service.orig = Address(10, 0, 0, 1);
  EXPECT_NE(aodv::describe(service).find("<service-discovery>"),
            std::string::npos);
}

TEST(OlsrCodecTest, HelloRoundTrip) {
  olsr::Message m;
  m.type = olsr::MsgType::kHello;
  m.originator = Address(10, 0, 0, 1);
  m.vtime_ms = 6000;
  m.msg_seq = 42;
  m.hello.willingness = 3;
  m.hello.links.push_back(
      {olsr::LinkCode::kSym, {Address(10, 0, 0, 2), Address(10, 0, 0, 3)}});
  m.hello.links.push_back({olsr::LinkCode::kMpr, {Address(10, 0, 0, 4)}});
  m.extension = {9, 8, 7};

  olsr::Packet p;
  p.pkt_seq = 1;
  p.messages.push_back(m);
  const auto decoded = olsr::decode(olsr::encode(p));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->messages.size(), 1u);
  const auto& h = decoded->messages.front();
  EXPECT_EQ(h.originator, m.originator);
  EXPECT_EQ(h.msg_seq, 42);
  ASSERT_EQ(h.hello.links.size(), 2u);
  EXPECT_EQ(h.hello.links[0].neighbors.size(), 2u);
  EXPECT_EQ(h.hello.links[1].code, olsr::LinkCode::kMpr);
  EXPECT_EQ(h.extension, m.extension);
}

TEST(OlsrCodecTest, TcRoundTrip) {
  olsr::Message m;
  m.type = olsr::MsgType::kTc;
  m.originator = Address(10, 0, 0, 7);
  m.ttl = 255;
  m.tc.ansn = 17;
  m.tc.advertised = {Address(10, 0, 0, 1), Address(10, 0, 0, 2)};
  olsr::Packet p;
  p.messages.push_back(m);
  const auto decoded = olsr::decode(olsr::encode(p));
  ASSERT_TRUE(decoded);
  const auto& tc = decoded->messages.front();
  EXPECT_EQ(tc.tc.ansn, 17);
  ASSERT_EQ(tc.tc.advertised.size(), 2u);
}

TEST(OlsrCodecTest, MultiMessagePacket) {
  olsr::Packet p;
  olsr::Message hello;
  hello.type = olsr::MsgType::kHello;
  hello.originator = Address(10, 0, 0, 1);
  olsr::Message tc;
  tc.type = olsr::MsgType::kTc;
  tc.originator = Address(10, 0, 0, 1);
  p.messages.push_back(hello);
  p.messages.push_back(tc);
  const auto decoded = olsr::decode(olsr::encode(p));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->messages.size(), 2u);
  EXPECT_EQ(decoded->messages[1].type, olsr::MsgType::kTc);
}

TEST(OlsrCodecTest, UnknownMessageTypeRejected) {
  Bytes wire;
  BufferWriter w(wire);
  w.u16(1);  // pkt seq
  w.u8(1);   // one message
  w.u8(0x7f);  // bogus type
  EXPECT_FALSE(olsr::decode(wire));
}

TEST(OlsrCodecTest, RandomBytesNeverCrash) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.uniform_int(0, 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)olsr::decode(junk);
  }
  SUCCEED();
}

// Property: encode/decode is the identity for arbitrary valid RREQs.
class AodvRreqProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AodvRreqProperty, RoundTripIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    aodv::Rreq m;
    m.hop_count = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    m.ttl = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    m.rreq_id = rng.uniform_int(0, 0xffffffff);
    m.dst = Address{rng.uniform_int(0, 0xffffffff)};
    m.dst_seqno = rng.uniform_int(0, 0xffffffff);
    m.unknown_seqno = rng.chance(0.5);
    m.orig = Address{rng.uniform_int(0, 0xffffffff)};
    m.orig_seqno = rng.uniform_int(0, 0xffffffff);
    Bytes ext(rng.uniform_int(0, 32));
    for (auto& b : ext) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

    const auto decoded = aodv::decode(aodv::encode(m, ext));
    ASSERT_TRUE(decoded);
    const auto& r = std::get<aodv::Rreq>(decoded->message);
    EXPECT_EQ(r.hop_count, m.hop_count);
    EXPECT_EQ(r.ttl, m.ttl);
    EXPECT_EQ(r.rreq_id, m.rreq_id);
    EXPECT_EQ(r.dst, m.dst);
    EXPECT_EQ(r.dst_seqno, m.dst_seqno);
    EXPECT_EQ(r.unknown_seqno, m.unknown_seqno);
    EXPECT_EQ(r.orig, m.orig);
    EXPECT_EQ(r.orig_seqno, m.orig_seqno);
    EXPECT_EQ(decoded->extension, ext);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AodvRreqProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace siphoc::routing
