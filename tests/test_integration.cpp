// End-to-end integration tests over the full testbed: the paper's scenarios
// exercised through the public API (scenario::Testbed + voip::SoftPhone),
// parameterized over the routing protocol where both apply.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "scenario/scenario.hpp"

namespace siphoc {
namespace {

class CallOverManet : public ::testing::TestWithParam<RoutingKind> {
 protected:
  scenario::Options options(std::size_t nodes) {
    scenario::Options o;
    o.nodes = nodes;
    o.topology = scenario::Topology::kChain;
    o.spacing = 100;
    o.routing = GetParam();
    o.seed = 77;
    return o;
  }
  Duration settle_time() {
    return GetParam() == RoutingKind::kOlsr ? seconds(15) : seconds(3);
  }
};

TEST_P(CallOverManet, Figure3CallSetupAndTeardown) {
  scenario::Testbed bed(options(4));
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(settle_time());

  EXPECT_TRUE(bed.register_and_wait(alice));   // steps 1-2
  EXPECT_TRUE(bed.register_and_wait(bob));     // steps 3-4
  if (GetParam() == RoutingKind::kOlsr) bed.run_for(seconds(8));

  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");  // 5-8
  ASSERT_TRUE(result.established);
  EXPECT_LT(result.setup_time, seconds(5));
  bed.run_for(seconds(1));  // let Bob's ACK land
  EXPECT_EQ(bob.user_agent().active_calls(), 1u);

  // Voice flows in both directions.
  bed.run_for(seconds(5));
  const auto report = alice.call_report(result.call);
  ASSERT_TRUE(report);
  EXPECT_GT(report->packets_received, 20u);
  EXPECT_GT(report->quality.mos, 3.5);

  // Teardown: BYE crosses the MANET.
  alice.hang_up(result.call);
  bed.run_for(seconds(2));
  EXPECT_EQ(bob.user_agent().active_calls(), 0u);
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);
}

TEST_P(CallOverManet, CalleeHangsUp) {
  scenario::Testbed bed(options(3));
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(settle_time());
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  if (GetParam() == RoutingKind::kOlsr) bed.run_for(seconds(8));

  sip::CallId bob_call = 0;
  voip::SoftPhoneEvents bob_events;
  bob_events.on_incoming = [&](sip::CallId id, const sip::Uri&) {
    bob_call = id;
  };
  bob.set_events(std::move(bob_events));

  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(result.established);
  ASSERT_NE(bob_call, 0u);
  bed.run_for(seconds(2));
  bob.hang_up(bob_call);
  bed.run_for(seconds(2));
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);
}

TEST_P(CallOverManet, CallToUnregisteredUserFails) {
  scenario::Testbed bed(options(3));
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  bed.settle(settle_time());
  bed.register_and_wait(alice);
  const auto result =
      bed.call_and_wait(alice, "nobody@voicehoc.ch", seconds(12));
  EXPECT_FALSE(result.established);
  EXPECT_EQ(result.failure_status, 404);
}

TEST_P(CallOverManet, SequentialCallsReuseState) {
  scenario::Testbed bed(options(3));
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(settle_time());
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  if (GetParam() == RoutingKind::kOlsr) bed.run_for(seconds(8));

  const auto first = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(first.established);
  bed.run_for(seconds(1));
  alice.hang_up(first.call);
  bed.run_for(seconds(1));

  // Second call: SLP cache is warm, so setup must not be slower.
  const auto second = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(second.established);
  EXPECT_LE(second.setup_time, first.setup_time + milliseconds(50));
}

INSTANTIATE_TEST_SUITE_P(Routing, CallOverManet,
                         ::testing::Values(RoutingKind::kAodv,
                                           RoutingKind::kOlsr),
                         [](const auto& info) {
                           return info.param == RoutingKind::kAodv ? "Aodv"
                                                                   : "Olsr";
                         });

// ---------------------------------------------------------------------------
// Scenarios specific to one configuration
// ---------------------------------------------------------------------------

TEST(IntegrationTest, BidirectionalConcurrentCalls) {
  scenario::Options o;
  o.nodes = 5;
  o.topology = scenario::Topology::kChain;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& a = bed.add_phone(0, "a");
  auto& b = bed.add_phone(4, "b");
  auto& c = bed.add_phone(1, "c");
  auto& d = bed.add_phone(3, "d");
  bed.settle(seconds(3));
  for (auto* p : {&a, &b, &c, &d}) bed.register_and_wait(*p);

  const auto r1 = bed.call_and_wait(a, "b@voicehoc.ch");
  const auto r2 = bed.call_and_wait(c, "d@voicehoc.ch");
  EXPECT_TRUE(r1.established);
  EXPECT_TRUE(r2.established);
  bed.run_for(seconds(5));
  EXPECT_TRUE(a.in_call(r1.call));
  EXPECT_TRUE(c.in_call(r2.call));
}

TEST(IntegrationTest, CallSurvivesWhenOffPathNodeDies) {
  scenario::Options o;
  o.nodes = 5;
  o.topology = scenario::Topology::kGrid;  // redundancy
  o.spacing = 80;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(4, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(result.established);
  // Kill a node that is not an endpoint.
  bed.medium().set_enabled(2, false);
  bed.run_for(seconds(8));
  // Endpoints are in a 2x... (grid of 5 => 3x2) -- the call should still be
  // alive (AODV repairs through remaining nodes when needed).
  EXPECT_TRUE(alice.in_call(result.call));
  const auto report = alice.call_report(result.call);
  ASSERT_TRUE(report);
  EXPECT_GT(report->packets_received, 0u);
}

TEST(IntegrationTest, RegistrationWorksBeforeAnyRoutesExist) {
  // REGISTER is loopback-only (phone -> local proxy): it must succeed even
  // at t=0 with no neighbor discovered yet (the transparency property).
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  EXPECT_TRUE(bed.register_and_wait(alice, seconds(2)));
}

TEST(IntegrationTest, LossyMediumCallStillEstablishes) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  o.radio.loss_probability = 0.10;
  o.seed = 5;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  // SIP retransmissions (Timer A/E) must push the call through 10% loss.
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(20));
  EXPECT_TRUE(result.established);
}

TEST(IntegrationTest, InternetCallFromManet) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  auto& provider = bed.add_provider("rescue.org");
  auto& hq_host = bed.add_internet_host("hq");
  voip::SoftPhoneConfig hq_config;
  hq_config.username = "hq";
  hq_config.domain = "rescue.org";
  hq_config.outbound_proxy = {*bed.internet().resolve("rescue.org"), 5060};
  voip::SoftPhone hq(hq_host, hq_config);

  bed.start();
  bed.make_gateway(0);
  auto& leader = bed.add_phone(2, "leader", "rescue.org");
  bed.settle(seconds(12));
  ASSERT_TRUE(bed.stack(2).internet_available());

  hq.power_on();
  bed.register_and_wait(leader);
  bed.run_for(seconds(1));
  EXPECT_EQ(provider.binding_count(), 2u);

  const auto result = bed.call_and_wait(leader, "hq@rescue.org", seconds(20));
  ASSERT_TRUE(result.established);
  bed.run_for(seconds(4));
  const auto report = leader.call_report(result.call);
  ASSERT_TRUE(report);
  EXPECT_GT(report->packets_received, 0u);
}

TEST(IntegrationTest, InternetCallIntoManet) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.add_provider("rescue.org");
  auto& hq_host = bed.add_internet_host("hq");
  voip::SoftPhoneConfig hq_config;
  hq_config.username = "hq";
  hq_config.domain = "rescue.org";
  hq_config.outbound_proxy = {*bed.internet().resolve("rescue.org"), 5060};
  voip::SoftPhone hq(hq_host, hq_config);

  bed.start();
  bed.make_gateway(0);
  auto& leader = bed.add_phone(2, "leader", "rescue.org");
  bed.settle(seconds(12));
  hq.power_on();
  bed.register_and_wait(leader);

  bool done = false, ok = false;
  voip::SoftPhoneEvents ev;
  ev.on_established = [&](sip::CallId) { done = ok = true; };
  ev.on_failed = [&](sip::CallId, int) { done = true; };
  hq.set_events(std::move(ev));
  hq.dial("leader@rescue.org");
  const auto deadline = bed.sim().now() + seconds(20);
  while (!done && bed.sim().now() < deadline) bed.run_for(milliseconds(10));
  EXPECT_TRUE(ok);
}

TEST(IntegrationTest, MobileNodesCallEventuallySucceeds) {
  scenario::Options o;
  o.nodes = 12;
  o.topology = scenario::Topology::kRandomArea;
  o.area = 300;  // dense enough to stay mostly connected
  o.mobile = true;
  o.waypoint.width = 300;
  o.waypoint.height = 300;
  o.waypoint.max_speed = 2.0;
  o.routing = RoutingKind::kAodv;
  o.seed = 9;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(11, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  int attempts = 0;
  bool established = false;
  while (!established && attempts < 5) {
    ++attempts;
    const auto result =
        bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(15));
    established = result.established;
    if (!established) bed.run_for(seconds(5));
  }
  EXPECT_TRUE(established);
}

// The observability contract end to end: a completed call must leave the
// expected traces in the process-wide registry (docs/METRICS.md).
TEST(IntegrationTest, CompletedCallLeavesMetricsTrail) {
  auto& registry = MetricsRegistry::instance();
  registry.reset();  // before the testbed: reset invalidates bound series

  scenario::Options o;
  o.nodes = 4;
  o.routing = RoutingKind::kAodv;
  o.seed = 77;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(3));
  ASSERT_TRUE(bed.register_and_wait(alice));
  ASSERT_TRUE(bed.register_and_wait(bob));
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(result.established);
  bed.run_for(seconds(2));

  // Setting up the call resolved the callee through MANET SLP and ran an
  // INVITE client transaction somewhere in the MANET.
  EXPECT_GT(registry.counter_total("slp.lookups_total"), 0u);
  EXPECT_GT(registry.counter_total("slp.remote_resolves_total") +
                registry.counter_total("slp.cache_hits_total"),
            0u);
  EXPECT_GT(registry.counter_total("sip.client_tx.INVITE"), 0u);
  EXPECT_GT(registry.counter_total("routing.control_packets_total"), 0u);
  EXPECT_GT(registry.counter_total("rtp.packets_rx_total"), 0u);

  // And the tracer saw the matching spans, stamped with virtual time.
  bool saw_resolve = false, saw_invite = false;
  for (const auto& span : registry.spans()) {
    saw_resolve = saw_resolve || span.name == "slp_resolve";
    saw_invite = saw_invite || span.name == "invite_transaction";
    EXPECT_LE(span.t_start, span.t_end);
  }
  EXPECT_TRUE(saw_resolve);
  EXPECT_TRUE(saw_invite);
}

TEST(IntegrationTest, DeterministicReplay) {
  const auto run_once = [] {
    scenario::Options o;
    o.nodes = 4;
    o.routing = RoutingKind::kAodv;
    o.seed = 4242;
    scenario::Testbed bed(o);
    bed.start();
    auto& alice = bed.add_phone(0, "alice");
    auto& bob = bed.add_phone(3, "bob");
    bed.settle(seconds(3));
    bed.register_and_wait(alice);
    bed.register_and_wait(bob);
    const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
    return std::make_pair(result.setup_time,
                          bed.medium().stats().frames_sent);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace siphoc
