// Tests: the TraceRecorder packet analyzer and the Testbed helpers.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace siphoc::scenario {
namespace {

TEST(TraceRecorderTest, CapturesAndDecodesCallSetup) {
  Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  Testbed bed(o);
  TraceRecorder trace(bed.medium());
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);
  bed.run_for(seconds(2));
  alice.hang_up(call.call);
  bed.run_for(seconds(1));

  EXPECT_GT(trace.captured(), 20u);
  // The capture contains the protocol conversation in decoded form.
  EXPECT_FALSE(trace.grep("INVITE sip:bob@voicehoc.ch").empty());
  EXPECT_FALSE(trace.grep("SIP/2.0 200 OK").empty());
  EXPECT_FALSE(trace.grep("BYE").empty());
  EXPECT_FALSE(trace.grep("RREQ").empty());
  EXPECT_FALSE(trace.grep("rqst:sip-contact:bob@voicehoc.ch").empty());
  EXPECT_FALSE(trace.grep("rply:sip-contact:bob@voicehoc.ch").empty());
  EXPECT_FALSE(trace.grep("RTP ssrc=").empty());
  // Formatting is stable and line-oriented.
  const std::string dump = trace.dump();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(dump.begin(), dump.end(), '\n')),
            trace.entries().size());
}

TEST(TraceRecorderTest, FilterAndCapacity) {
  Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  Testbed bed(o);
  TraceRecorder trace(bed.medium(), /*capacity=*/5);
  trace.set_filter([](const net::Frame& f) {
    return f.datagram.dst_port == net::kAodvPort;
  });
  bed.start();
  bed.settle(seconds(10));
  EXPECT_LE(trace.entries().size(), 5u);   // ring bounded
  EXPECT_GT(trace.captured(), 5u);         // but more passed through
  for (const auto& e : trace.entries()) {
    EXPECT_EQ(e.traffic_class, net::TrafficClass::kRouting);
  }
}

TEST(TraceRecorderTest, DecodesOlsrAndTunnel) {
  Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kOlsr;
  Testbed bed(o);
  TraceRecorder trace(bed.medium());
  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(15));
  EXPECT_FALSE(trace.grep("OLSR HELLO").empty());
  EXPECT_FALSE(trace.grep("TUNNEL CONNECT").empty());
  EXPECT_FALSE(trace.grep("TUNNEL ACCEPT").empty());
  EXPECT_FALSE(trace.grep("TUNNEL KEEPALIVE").empty());
}

TEST(TestbedTest, AddressConvention) {
  EXPECT_EQ(Testbed::manet_address(0).to_string(), "10.0.0.1");
  EXPECT_EQ(Testbed::manet_address(9).to_string(), "10.0.0.10");
}

TEST(TestbedTest, TopologiesProduceExpectedConnectivity) {
  Options chain;
  chain.nodes = 3;
  chain.topology = Topology::kChain;
  chain.spacing = 100;
  Testbed bed(chain);
  EXPECT_TRUE(bed.medium().connected(0, 1));
  EXPECT_TRUE(bed.medium().connected(1, 2));
  EXPECT_FALSE(bed.medium().connected(0, 2));
}

TEST(TestbedTest, CallAndWaitReportsFailureStatus) {
  Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  const auto result = bed.call_and_wait(alice, "ghost@voicehoc.ch",
                                        seconds(12));
  EXPECT_FALSE(result.established);
  EXPECT_EQ(result.failure_status, 404);
}

TEST(TestbedTest, ProviderAndInternetHostWiring) {
  Options o;
  o.nodes = 1;
  Testbed bed(o);
  auto& provider = bed.add_provider("x.org");
  EXPECT_EQ(provider.config().domain, "x.org");
  EXPECT_TRUE(bed.internet().resolve("x.org").has_value());
  auto& host = bed.add_internet_host("h");
  EXPECT_TRUE(host.has_wired());
  EXPECT_FALSE(bed.provider_outbound_proxy("x.org").has_value());
  bed.add_provider("y.org", true);
  EXPECT_TRUE(bed.provider_outbound_proxy("y.org").has_value());
}

}  // namespace
}  // namespace siphoc::scenario
