# Tool-level byte-identity check for region sharding (docs/ARCHITECTURE.md):
# run the same sharded scenario script at --sim-threads 1 and 2 and demand
# identical narration and identical metrics sidecars. `--sim-threads` is
# execution policy, never content; any divergence is a determinism bug.
#
# Usage:
#   cmake -DRUNNER=<scenario_runner> -DSCRIPT=<script.scn>
#         -DWORKDIR=<scratch dir> -P sharded_identity.cmake

foreach(threads 1 2)
  set(dir "${WORKDIR}/t${threads}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND "${RUNNER}" "${SCRIPT}" --sim-threads ${threads} --metrics m.json
    WORKING_DIRECTORY "${dir}"
    OUTPUT_FILE "${dir}/out.txt"
    ERROR_FILE "${dir}/err.txt"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    file(READ "${dir}/out.txt" out)
    message(FATAL_ERROR
            "scenario_runner --sim-threads ${threads} exited ${status}:\n${out}")
  endif()
endforeach()

foreach(artifact out.txt m.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORKDIR}/t1/${artifact}" "${WORKDIR}/t2/${artifact}"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "${artifact} differs between --sim-threads 1 and 2: sharded runs "
            "must be byte-identical for any thread count")
  endif()
endforeach()
