// Tests: user agent registration and call control against a real registrar
// (Internet pair: phone <-> provider), plus direct UA <-> UA calls.
#include <gtest/gtest.h>

#include "sip/registrar.hpp"
#include "sip/user_agent.hpp"

namespace siphoc::sip {
namespace {

class UaFixture : public ::testing::Test {
 protected:
  UaFixture()
      : sim_(17),
        internet_(sim_, milliseconds(10)),
        provider_host_(sim_, 100, "provider"),
        alice_host_(sim_, 0, "alice-pc"),
        bob_host_(sim_, 1, "bob-pc") {
    provider_host_.attach_wired(internet_, net::Address(192, 0, 2, 10));
    alice_host_.attach_wired(internet_, net::Address(192, 0, 2, 1));
    bob_host_.attach_wired(internet_, net::Address(192, 0, 2, 2));
    internet_.register_domain("voicehoc.ch", net::Address(192, 0, 2, 10));
    RegistrarConfig rc;
    rc.domain = "voicehoc.ch";
    registrar_ = std::make_unique<Registrar>(provider_host_, rc);
  }

  UserAgentConfig config(const std::string& user, net::Host& host) {
    UserAgentConfig c;
    c.aor = *Uri::parse("sip:" + user + "@voicehoc.ch");
    c.outbound_proxy = {net::Address(192, 0, 2, 10), 5060};
    c.media_address = host.wired_address();
    c.answer_delay = milliseconds(50);
    return c;
  }

  sim::Simulator sim_;
  net::Internet internet_;
  net::Host provider_host_, alice_host_, bob_host_;
  std::unique_ptr<Registrar> registrar_;
};

TEST_F(UaFixture, RegisterWithProvider) {
  UserAgent alice(alice_host_, config("alice", alice_host_));
  bool ok = false;
  int status = 0;
  UserAgentCallbacks cb;
  cb.on_register_result = [&](bool success, int s) {
    ok = success;
    status = s;
  };
  alice.set_callbacks(std::move(cb));
  alice.start_registration();
  sim_.run_for(seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(alice.registered());
  const auto binding = registrar_->binding("alice@voicehoc.ch");
  ASSERT_TRUE(binding);
  EXPECT_EQ(binding->contact.host, "192.0.2.1");
}

TEST_F(UaFixture, UnregisterRemovesBinding) {
  UserAgent alice(alice_host_, config("alice", alice_host_));
  alice.start_registration();
  sim_.run_for(seconds(1));
  ASSERT_TRUE(registrar_->binding("alice@voicehoc.ch"));
  alice.stop_registration();
  sim_.run_for(seconds(1));
  EXPECT_FALSE(registrar_->binding("alice@voicehoc.ch"));
  EXPECT_FALSE(alice.registered());
}

TEST_F(UaFixture, RegistrationRefreshes) {
  auto c = config("alice", alice_host_);
  c.register_expires = seconds(10);
  UserAgent alice(alice_host_, c);
  alice.start_registration();
  sim_.run_for(seconds(1));
  const auto before = registrar_->registers_accepted();
  sim_.run_for(seconds(30));  // several half-lifetime refreshes
  EXPECT_GT(registrar_->registers_accepted(), before + 2);
  EXPECT_TRUE(alice.registered());
}

struct CallLog {
  std::vector<std::string> events;
  CallId incoming_id = 0;
  net::Endpoint remote_rtp;

  UserAgentCallbacks callbacks() {
    UserAgentCallbacks cb;
    cb.on_incoming = [this](CallId id, const Uri& peer) {
      events.push_back("incoming:" + peer.aor());
      incoming_id = id;
    };
    cb.on_ringing = [this](CallId) { events.push_back("ringing"); };
    cb.on_established = [this](CallId, net::Endpoint rtp) {
      events.push_back("established");
      remote_rtp = rtp;
    };
    cb.on_failed = [this](CallId, int status) {
      events.push_back("failed:" + std::to_string(status));
    };
    cb.on_ended = [this](CallId) { events.push_back("ended"); };
    return cb;
  }
};

TEST_F(UaFixture, FullCallThroughProvider) {
  UserAgent alice(alice_host_, config("alice", alice_host_));
  UserAgent bob(bob_host_, config("bob", bob_host_));
  CallLog alice_log, bob_log;
  alice.set_callbacks(alice_log.callbacks());
  bob.set_callbacks(bob_log.callbacks());
  alice.start_registration();
  bob.start_registration();
  sim_.run_for(seconds(1));

  const CallId call = alice.invite(*Uri::parse("sip:bob@voicehoc.ch"));
  sim_.run_for(seconds(2));

  ASSERT_GE(alice_log.events.size(), 2u);
  EXPECT_EQ(alice_log.events[0], "ringing");
  EXPECT_EQ(alice_log.events[1], "established");
  ASSERT_GE(bob_log.events.size(), 2u);
  EXPECT_EQ(bob_log.events[0], "incoming:alice@voicehoc.ch");
  EXPECT_EQ(bob_log.events[1], "established");
  EXPECT_EQ(alice.call_state(call), UserAgent::CallState::kEstablished);
  EXPECT_EQ(alice.active_calls(), 1u);
  // Media endpoints crossed over correctly.
  EXPECT_EQ(alice_log.remote_rtp.address, bob_host_.wired_address());
  EXPECT_EQ(bob_log.remote_rtp.address, alice_host_.wired_address());

  // Hang up: BYE travels directly to the peer contact.
  alice.hangup(call);
  sim_.run_for(seconds(2));
  EXPECT_EQ(alice_log.events.back(), "ended");
  EXPECT_EQ(bob_log.events.back(), "ended");
  EXPECT_EQ(bob.active_calls(), 0u);
}

TEST_F(UaFixture, CalleeHangsUpToo) {
  UserAgent alice(alice_host_, config("alice", alice_host_));
  UserAgent bob(bob_host_, config("bob", bob_host_));
  CallLog alice_log, bob_log;
  alice.set_callbacks(alice_log.callbacks());
  bob.set_callbacks(bob_log.callbacks());
  alice.start_registration();
  bob.start_registration();
  sim_.run_for(seconds(1));
  alice.invite(*Uri::parse("sip:bob@voicehoc.ch"));
  sim_.run_for(seconds(2));
  ASSERT_EQ(bob.active_calls(), 1u);
  bob.hangup(bob_log.incoming_id);
  sim_.run_for(seconds(2));
  EXPECT_EQ(alice_log.events.back(), "ended");
  EXPECT_EQ(alice.active_calls(), 0u);
}

TEST_F(UaFixture, CallToUnknownUserFails404) {
  UserAgent alice(alice_host_, config("alice", alice_host_));
  CallLog log;
  alice.set_callbacks(log.callbacks());
  alice.start_registration();
  sim_.run_for(seconds(1));
  alice.invite(*Uri::parse("sip:ghost@voicehoc.ch"));
  sim_.run_for(seconds(2));
  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.events.back(), "failed:404");
}

TEST_F(UaFixture, ManualAnswerMode) {
  auto bob_config = config("bob", bob_host_);
  bob_config.auto_answer = false;
  UserAgent alice(alice_host_, config("alice", alice_host_));
  UserAgent bob(bob_host_, bob_config);
  CallLog alice_log, bob_log;
  alice.set_callbacks(alice_log.callbacks());
  bob.set_callbacks(bob_log.callbacks());
  alice.start_registration();
  bob.start_registration();
  sim_.run_for(seconds(1));
  alice.invite(*Uri::parse("sip:bob@voicehoc.ch"));
  sim_.run_for(seconds(3));
  // Still ringing: nobody answered.
  EXPECT_EQ(alice_log.events.back(), "ringing");
  bob.answer(bob_log.incoming_id);
  sim_.run_for(seconds(1));
  EXPECT_EQ(alice_log.events.back(), "established");
}

TEST_F(UaFixture, RejectedCallFails) {
  auto bob_config = config("bob", bob_host_);
  bob_config.auto_answer = false;
  UserAgent alice(alice_host_, config("alice", alice_host_));
  UserAgent bob(bob_host_, bob_config);
  CallLog alice_log, bob_log;
  alice.set_callbacks(alice_log.callbacks());
  bob.set_callbacks(bob_log.callbacks());
  alice.start_registration();
  bob.start_registration();
  sim_.run_for(seconds(1));
  alice.invite(*Uri::parse("sip:bob@voicehoc.ch"));
  sim_.run_for(seconds(1));
  bob.reject(bob_log.incoming_id);
  sim_.run_for(seconds(1));
  EXPECT_EQ(alice_log.events.back(), "failed:486");
  EXPECT_EQ(alice.active_calls(), 0u);
}

TEST_F(UaFixture, LocalRtpPortsDistinctPerCall) {
  UserAgent alice(alice_host_, config("alice", alice_host_));
  const CallId c1 = alice.invite(*Uri::parse("sip:x@voicehoc.ch"));
  const CallId c2 = alice.invite(*Uri::parse("sip:y@voicehoc.ch"));
  EXPECT_NE(alice.local_rtp(c1).port, alice.local_rtp(c2).port);
}

}  // namespace
}  // namespace siphoc::sip
