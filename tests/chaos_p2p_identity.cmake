# Tool-level byte-identity check for the P2P chaos soak: run
# `--chaos ... p2p=N` (region-sharded by construction) at --sim-threads 1
# and 2 and demand identical narration and identical metrics sidecars.
# The soak itself must also pass (exit 0): zero invariant violations and
# 100% lookup success after stabilization.
#
# Usage:
#   cmake -DRUNNER=<scenario_runner> -DWORKDIR=<scratch dir>
#         -P chaos_p2p_identity.cmake

foreach(threads 1 2)
  set(dir "${WORKDIR}/t${threads}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND "${RUNNER}" --chaos seed=5 duration=40 p2p=3
            --sim-threads ${threads} --metrics m.json
    WORKING_DIRECTORY "${dir}"
    OUTPUT_FILE "${dir}/out.txt"
    ERROR_FILE "${dir}/err.txt"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    file(READ "${dir}/out.txt" out)
    message(FATAL_ERROR
            "scenario_runner --chaos p2p=3 --sim-threads ${threads} exited "
            "${status}:\n${out}")
  endif()
endforeach()

foreach(artifact out.txt m.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORKDIR}/t1/${artifact}" "${WORKDIR}/t2/${artifact}"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "${artifact} differs between --sim-threads 1 and 2: the chaos "
            "p2p soak must be byte-identical for any thread count")
  endif()
endforeach()
