// Tests: SIP URI / header / message grammar and SDP (RFC 3261 / 4566).
#include <gtest/gtest.h>

#include "sip/message.hpp"
#include "sip/sdp.hpp"

namespace siphoc::sip {
namespace {

TEST(UriTest, FullForm) {
  auto uri = Uri::parse("sip:alice@voicehoc.ch:5070;transport=udp;lr");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->scheme, "sip");
  EXPECT_EQ(uri->user, "alice");
  EXPECT_EQ(uri->host, "voicehoc.ch");
  EXPECT_EQ(uri->port, 5070);
  EXPECT_EQ(uri->params.at("transport"), "udp");
  EXPECT_TRUE(uri->params.contains("lr"));
  EXPECT_EQ(uri->aor(), "alice@voicehoc.ch");
}

TEST(UriTest, MinimalForms) {
  auto domain_only = Uri::parse("sip:voicehoc.ch");
  ASSERT_TRUE(domain_only);
  EXPECT_TRUE(domain_only->user.empty());
  EXPECT_EQ(domain_only->port, 0);

  auto numeric = Uri::parse("sip:bob@10.0.0.4:5060");
  ASSERT_TRUE(numeric);
  const auto ep = numeric->numeric_endpoint();
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->to_string(), "10.0.0.4:5060");
}

TEST(UriTest, DefaultPortOnResolve) {
  auto uri = Uri::parse("sip:bob@10.0.0.4");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->numeric_endpoint()->port, 5060);
  EXPECT_FALSE(Uri::parse("sip:bob@voicehoc.ch")->numeric_endpoint());
}

TEST(UriTest, Rejections) {
  EXPECT_FALSE(Uri::parse("http://example.com"));
  EXPECT_FALSE(Uri::parse("alice@voicehoc.ch"));
  EXPECT_FALSE(Uri::parse("sip:"));
  EXPECT_FALSE(Uri::parse("sip:alice@host:port"));
  EXPECT_FALSE(Uri::parse("sip:alice@host:70000"));
}

TEST(UriTest, SerializeRoundTrip) {
  const std::string text = "sip:alice@voicehoc.ch:5070;lr;transport=udp";
  auto uri = Uri::parse(text);
  ASSERT_TRUE(uri);
  auto again = Uri::parse(uri->to_string());
  ASSERT_TRUE(again);
  EXPECT_EQ(*uri, *again);
}

TEST(NameAddrTest, DisplayNameAndParams) {
  auto na = NameAddr::parse("\"Alice Liddell\" <sip:alice@voicehoc.ch>;tag=77");
  ASSERT_TRUE(na);
  EXPECT_EQ(na->display, "Alice Liddell");
  EXPECT_EQ(na->uri.user, "alice");
  EXPECT_EQ(na->tag(), "77");
}

TEST(NameAddrTest, AddrSpecFormSeparatesHeaderParams) {
  // Without <>, the ;tag belongs to the header, not the URI.
  auto na = NameAddr::parse("sip:bob@voicehoc.ch;tag=abc");
  ASSERT_TRUE(na);
  EXPECT_EQ(na->tag(), "abc");
  EXPECT_TRUE(na->uri.params.empty());
}

TEST(NameAddrTest, SetTagAndRoundTrip) {
  NameAddr na;
  na.uri = *Uri::parse("sip:carol@x.org");
  na.set_tag("z1");
  auto again = NameAddr::parse(na.to_string());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->tag(), "z1");
  EXPECT_EQ(again->uri.aor(), "carol@x.org");
}

TEST(ViaTest, ParseWithParams) {
  auto via = Via::parse(
      "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK776;received=10.0.0.9");
  ASSERT_TRUE(via);
  EXPECT_EQ(via->host, "10.0.0.1");
  EXPECT_EQ(via->port, 5060);
  EXPECT_EQ(via->branch(), "z9hG4bK776");
  const auto ep = via->response_endpoint();
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->address.to_string(), "10.0.0.9");  // received wins
}

TEST(ViaTest, DefaultPortAndRejections) {
  auto via = Via::parse("SIP/2.0/UDP host.example;branch=z9hG4bK1");
  ASSERT_TRUE(via);
  EXPECT_EQ(via->port, 5060);
  EXPECT_FALSE(via->response_endpoint());  // symbolic, no received
  EXPECT_FALSE(Via::parse("SIP/2.0/TCP 10.0.0.1:5060"));
  EXPECT_FALSE(Via::parse("garbage"));
}

TEST(CSeqTest, ParseAndFormat) {
  auto cseq = CSeq::parse("314159 INVITE");
  ASSERT_TRUE(cseq);
  EXPECT_EQ(cseq->number, 314159u);
  EXPECT_EQ(cseq->method, "INVITE");
  EXPECT_EQ(cseq->to_string(), "314159 INVITE");
  EXPECT_FALSE(CSeq::parse("INVITE"));
  EXPECT_FALSE(CSeq::parse("12"));
}

// ---------------------------------------------------------------------------
// Full messages
// ---------------------------------------------------------------------------

const char kInviteWire[] =
    "INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"
    "Via: SIP/2.0/UDP 127.0.0.1:5070;branch=z9hG4bK74bf9\r\n"
    "Max-Forwards: 70\r\n"
    "From: \"Alice\" <sip:alice@voicehoc.ch>;tag=9fxced76sl\r\n"
    "To: <sip:bob@voicehoc.ch>\r\n"
    "Call-ID: 3848276298220188511@voicehoc.ch\r\n"
    "CSeq: 1 INVITE\r\n"
    "Contact: <sip:alice@127.0.0.1:5070>\r\n"
    "Content-Type: application/sdp\r\n"
    "Content-Length: 4\r\n"
    "\r\n"
    "v=0\n";

TEST(MessageTest, ParseRequest) {
  auto m = Message::parse(kInviteWire);
  ASSERT_TRUE(m);
  EXPECT_TRUE(m->is_request());
  EXPECT_EQ(m->method(), "INVITE");
  EXPECT_EQ(m->request_uri().aor(), "bob@voicehoc.ch");
  EXPECT_EQ(m->call_id(), "3848276298220188511@voicehoc.ch");
  EXPECT_EQ(m->cseq()->number, 1u);
  EXPECT_EQ(m->from()->tag(), "9fxced76sl");
  EXPECT_EQ(m->from()->display, "Alice");
  EXPECT_TRUE(m->to()->tag().empty());
  EXPECT_EQ(m->top_via()->branch(), "z9hG4bK74bf9");
  EXPECT_EQ(m->body(), "v=0\n");
  EXPECT_EQ(m->max_forwards(), 70);
}

TEST(MessageTest, SerializeParseRoundTrip) {
  auto m = Message::parse(kInviteWire);
  ASSERT_TRUE(m);
  auto again = Message::parse(m->serialize());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->method(), "INVITE");
  EXPECT_EQ(again->body(), m->body());
  EXPECT_EQ(again->raw_headers().size(), m->raw_headers().size());
}

TEST(MessageTest, ParseResponse) {
  auto m = Message::parse(
      "SIP/2.0 180 Ringing\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK1\r\n"
      "CSeq: 1 INVITE\r\n"
      "\r\n");
  ASSERT_TRUE(m);
  EXPECT_TRUE(m->is_response());
  EXPECT_EQ(m->status(), 180);
  EXPECT_EQ(m->reason(), "Ringing");
}

TEST(MessageTest, CompactHeaderForms) {
  auto m = Message::parse(
      "OPTIONS sip:x@y SIP/2.0\r\n"
      "v: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK2\r\n"
      "f: <sip:a@y>;tag=1\r\n"
      "t: <sip:x@y>\r\n"
      "i: abc@y\r\n"
      "m: <sip:a@10.0.0.1:5070>\r\n"
      "l: 0\r\n"
      "\r\n");
  ASSERT_TRUE(m);
  EXPECT_TRUE(m->top_via());
  EXPECT_EQ(m->call_id(), "abc@y");
  EXPECT_TRUE(m->contact());
  EXPECT_EQ(m->from()->tag(), "1");
}

TEST(MessageTest, FoldedHeaderUnfolds) {
  auto m = Message::parse(
      "OPTIONS sip:x@y SIP/2.0\r\n"
      "Subject: first line\r\n"
      " continued here\r\n"
      "Content-Length: 0\r\n"
      "\r\n");
  ASSERT_TRUE(m);
  EXPECT_EQ(*m->header("subject"), "first line continued here");
}

TEST(MessageTest, CommaSeparatedViasSplit) {
  auto m = Message::parse(
      "ACK sip:x@y SIP/2.0\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK1, "
      "SIP/2.0/UDP 10.0.0.2:5060;branch=z9hG4bK2\r\n"
      "Content-Length: 0\r\n"
      "\r\n");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->vias().size(), 2u);
}

TEST(MessageTest, ViaPushPopOrder) {
  auto m = Message::parse(kInviteWire);
  ASSERT_TRUE(m);
  Via via;
  via.host = "10.0.0.1";
  via.params["branch"] = "z9hG4bKproxy";
  m->push_via(via);
  EXPECT_EQ(m->top_via()->branch(), "z9hG4bKproxy");
  EXPECT_EQ(m->vias().size(), 2u);
  m->pop_via();
  EXPECT_EQ(m->top_via()->branch(), "z9hG4bK74bf9");
}

TEST(MessageTest, ResponseToCopiesRequiredHeaders) {
  auto req = Message::parse(kInviteWire);
  ASSERT_TRUE(req);
  req->add_header("record-route", "<sip:10.0.0.9;lr>");
  const Message resp = Message::response_to(*req, 200);
  EXPECT_EQ(resp.status(), 200);
  EXPECT_EQ(resp.reason(), "OK");
  EXPECT_EQ(resp.top_via()->branch(), req->top_via()->branch());
  EXPECT_EQ(resp.call_id(), req->call_id());
  EXPECT_EQ(resp.cseq()->method, "INVITE");
  EXPECT_FALSE(resp.headers("record-route").empty());
  EXPECT_FALSE(resp.header("contact"));  // not copied
}

TEST(MessageTest, BodyHonorsContentLength) {
  auto m = Message::parse(
      "OPTIONS sip:x@y SIP/2.0\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "12345extra-bytes-ignored");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->body(), "12345");
  EXPECT_FALSE(Message::parse(
      "OPTIONS sip:x@y SIP/2.0\r\nContent-Length: 99\r\n\r\nshort"));
}

TEST(MessageTest, SerializedFormHasCrlfAndContentLength) {
  Message m = Message::request("OPTIONS", *Uri::parse("sip:x@y"));
  m.set_body("hello", "text/plain");
  const std::string wire = m.serialize();
  EXPECT_NE(wire.find("OPTIONS sip:x@y SIP/2.0\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(MessageTest, MalformedInputsRejected) {
  EXPECT_FALSE(Message::parse(""));
  EXPECT_FALSE(Message::parse("\r\n"));
  EXPECT_FALSE(Message::parse("INVITE\r\n\r\n"));
  EXPECT_FALSE(Message::parse("INVITE sip:x@y SIP/3.0\r\n\r\n"));
  EXPECT_FALSE(Message::parse("SIP/2.0 abc Huh\r\n\r\n"));
  EXPECT_FALSE(Message::parse("INVITE sip:x@y SIP/2.0\r\nno colon\r\n\r\n"));
  EXPECT_FALSE(
      Message::parse("INVITE sip:x@y SIP/2.0\r\nheader: unterminated"));
}

TEST(MessageTest, SummaryFormats) {
  auto req = Message::parse(kInviteWire);
  EXPECT_EQ(req->summary(), "INVITE sip:bob@voicehoc.ch");
  const Message resp = Message::response_to(*req, 404);
  EXPECT_EQ(resp.summary(), "404 Not Found (INVITE)");
}

// ---------------------------------------------------------------------------
// SDP
// ---------------------------------------------------------------------------

TEST(SdpTest, BuildSerializeParse) {
  const Sdp offer = Sdp::audio(net::Address(10, 0, 0, 1), 8000, 4711);
  auto parsed = Sdp::parse(offer.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->connection, net::Address(10, 0, 0, 1));
  ASSERT_EQ(parsed->media.size(), 1u);
  EXPECT_EQ(parsed->media[0].port, 8000);
  EXPECT_EQ(parsed->media[0].payload_types, std::vector<int>{0});
  const auto ep = parsed->audio_endpoint();
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->to_string(), "10.0.0.1:8000");
}

TEST(SdpTest, ToleratesUnknownLines) {
  auto sdp = Sdp::parse(
      "v=0\r\n"
      "o=- 1 1 IN IP4 10.0.0.2\r\n"
      "s=call\r\n"
      "c=IN IP4 10.0.0.2\r\n"
      "b=AS:64\r\n"
      "t=0 0\r\n"
      "a=sendrecv\r\n"
      "m=audio 9000 RTP/AVP 0 8\r\n"
      "a=rtpmap:0 PCMU/8000\r\n");
  ASSERT_TRUE(sdp);
  EXPECT_EQ(sdp->media[0].payload_types.size(), 2u);
  EXPECT_EQ(sdp->session_name, "call");
}

TEST(SdpTest, Rejections) {
  EXPECT_FALSE(Sdp::parse("v=0\r\nm=audio 8000 RTP/AVP 0\r\n"));  // no c=
  EXPECT_FALSE(Sdp::parse("v=0\r\nc=IN IP4 10.0.0.1\r\n"));       // no m=
  EXPECT_FALSE(
      Sdp::parse("v=0\r\nc=IN IP4 10.0.0.1\r\nm=audio huge RTP/AVP 0\r\n"));
}

}  // namespace
}  // namespace siphoc::sip
