// Failure-injection tests: partitions, node death, packet loss bursts,
// component restarts -- the events an emergency-response MANET actually
// experiences. The middleware must degrade and recover, never wedge.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace siphoc {
namespace {

TEST(ResilienceTest, PartitionDuringCallBothSidesEnd) {
  scenario::Options o;
  o.nodes = 4;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);
  bed.run_for(seconds(2));

  // Hard partition: the two middle relays go dark.
  bed.medium().set_enabled(1, false);
  bed.medium().set_enabled(2, false);
  bed.run_for(seconds(3));

  // Alice hangs up into the void: the BYE transaction must time out and
  // the call must still be reported ended locally (no wedged state).
  bool alice_ended = false;
  voip::SoftPhoneEvents ev;
  ev.on_ended = [&](sip::CallId) { alice_ended = true; };
  alice.set_events(std::move(ev));
  alice.hang_up(call.call);
  bed.run_for(seconds(40));  // 64*T1 BYE timeout
  EXPECT_TRUE(alice_ended);
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);
}

TEST(ResilienceTest, CallAcrossHealedPartition) {
  scenario::Options o;
  o.nodes = 4;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  // Partition before the first call: it fails.
  bed.medium().set_enabled(1, false);
  const auto blocked = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
  EXPECT_FALSE(blocked.established);

  // Heal; the next call succeeds.
  bed.medium().set_enabled(1, true);
  bed.run_for(seconds(3));
  const auto healed = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(15));
  EXPECT_TRUE(healed.established);
}

TEST(ResilienceTest, CalleeNodeDiesMidCall) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);

  bed.medium().set_enabled(2, false);  // Bob's battery dies
  bed.run_for(seconds(5));
  // RTP stops arriving; the report reflects it rather than crashing.
  const auto before = alice.call_report(call.call)->packets_received;
  bed.run_for(seconds(5));
  const auto after = alice.call_report(call.call)->packets_received;
  EXPECT_EQ(before, after);
  // Hanging up still terminates cleanly on Alice's side.
  alice.hang_up(call.call);
  bed.run_for(seconds(40));
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);
}

TEST(ResilienceTest, LossBurstDuringEstablishedCallRecovers) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  o.seed = 3;
  scenario::Testbed bed(o);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.voice.always_on = true;
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(2, pc);
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);
  bed.run_for(seconds(5));

  // 10 s of terrible radio (50% loss) -- voice suffers but the call and
  // routing survive, and quality recovers afterwards.
  // (RadioConfig is copied at construction; mutate via a link filter that
  // emulates outage bursts instead.)
  int counter = 0;
  bed.medium().set_link_filter([&counter](net::NodeId, net::NodeId) {
    return ++counter % 2 == 0;  // drop every other delivery opportunity
  });
  bed.run_for(seconds(10));
  bed.medium().set_link_filter(nullptr);
  bed.run_for(seconds(10));

  const auto report = alice.call_report(call.call);
  ASSERT_TRUE(report);
  EXPECT_GT(report->packets_received, 400u);  // stream continued overall
  EXPECT_TRUE(alice.in_call(call.call));
}

TEST(ResilienceTest, StackRestartReRegistersCleanly) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(1, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  ASSERT_TRUE(bed.call_and_wait(alice, "bob@voicehoc.ch").established);

  // Restart node 1's whole middleware stack (daemon crash + respawn).
  bed.stack(1).stop();
  bed.run_for(seconds(2));
  bed.stack(1).start();
  bed.run_for(seconds(2));
  // Bob must re-register (his proxy lost its bindings); then calls work.
  bed.register_and_wait(bob);
  const auto again = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(15));
  EXPECT_TRUE(again.established);
}

TEST(ResilienceTest, SlpEntryExpiryCausesCleanMissNotStaleForward) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  // Short advertise lifetime so expiry happens within the test.
  o.stack.proxy.slp_advertise_lifetime = seconds(5);
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  ASSERT_TRUE(bed.call_and_wait(alice, "bob@voicehoc.ch").established);

  // Bob's phone dies silently; his advertisement expires everywhere.
  bob.power_off();
  bed.medium().set_enabled(2, false);
  bed.run_for(seconds(20));
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(12));
  EXPECT_FALSE(result.established);
  EXPECT_EQ(result.failure_status, 404);  // clean miss, not a black hole
}

TEST(ResilienceTest, SimultaneousCrossCallsBothComplete) {
  // Glare: alice calls bob while bob calls alice.
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  int established = 0;
  voip::SoftPhoneEvents ae, be;
  ae.on_established = [&](sip::CallId) { ++established; };
  be.on_established = [&](sip::CallId) { ++established; };
  alice.set_events(std::move(ae));
  bob.set_events(std::move(be));
  alice.dial("bob@voicehoc.ch");
  bob.dial("alice@voicehoc.ch");
  bed.run_for(seconds(10));
  // Both INVITEs complete: each phone has one outgoing + one incoming call.
  EXPECT_EQ(established, 4);  // 2 UAC-side + 2 UAS-side events
  EXPECT_EQ(alice.user_agent().active_calls(), 2u);
  EXPECT_EQ(bob.user_agent().active_calls(), 2u);
}

}  // namespace
}  // namespace siphoc
