// Failure-injection tests: partitions, node death, packet loss bursts,
// component restarts -- the events an emergency-response MANET actually
// experiences. The middleware must degrade and recover, never wedge.
//
// All injection goes through the chaos engine (scenario/faults.hpp), so
// these tests double as coverage of its manual fault API; the seeded-plan
// soak lives in test_chaos.cpp.
#include <gtest/gtest.h>

#include "scenario/faults.hpp"
#include "scenario/invariants.hpp"

namespace siphoc {
namespace {

using scenario::FaultEngine;
using scenario::InvariantMonitor;

TEST(ResilienceTest, PartitionDuringCallBothSidesEnd) {
  scenario::Options o;
  o.nodes = 4;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);
  bed.run_for(seconds(2));

  // Hard partition: the two middle relays go dark.
  FaultEngine engine(bed);
  engine.jam(1);
  engine.jam(2);
  bed.run_for(seconds(3));

  // Alice hangs up into the void: the BYE transaction must time out and
  // the call must still be reported ended locally (no wedged state).
  bool alice_ended = false;
  voip::SoftPhoneEvents ev;
  ev.on_ended = [&](sip::CallId) { alice_ended = true; };
  alice.set_events(std::move(ev));
  alice.hang_up(call.call);
  bed.run_for(seconds(40));  // 64*T1 BYE timeout
  EXPECT_TRUE(alice_ended);
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);

  // Nothing may be wedged on either side after the dust settles.
  InvariantMonitor monitor(bed);
  monitor.check();
  EXPECT_TRUE(monitor.report().ok()) << monitor.report().to_string();
}

TEST(ResilienceTest, CallAcrossHealedPartition) {
  scenario::Options o;
  o.nodes = 4;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  // Partition before the first call: it fails.
  FaultEngine engine(bed);
  engine.partition({0}, {1, 2, 3});
  const auto blocked = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(8));
  EXPECT_FALSE(blocked.established);

  // Heal; the next call succeeds.
  engine.heal();
  bed.run_for(seconds(3));
  const auto healed = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(15));
  EXPECT_TRUE(healed.established);
}

TEST(ResilienceTest, CalleeNodeDiesMidCall) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);

  FaultEngine engine(bed);
  engine.crash(2);  // Bob's battery dies: stack, phone and radio all gone
  bed.run_for(seconds(5));
  // RTP stops arriving; the report reflects it rather than crashing.
  const auto before = alice.call_report(call.call)->packets_received;
  bed.run_for(seconds(5));
  const auto after = alice.call_report(call.call)->packets_received;
  EXPECT_EQ(before, after);
  // Hanging up still terminates cleanly on Alice's side.
  alice.hang_up(call.call);
  bed.run_for(seconds(40));
  EXPECT_EQ(alice.user_agent().active_calls(), 0u);
}

TEST(ResilienceTest, LossBurstDuringEstablishedCallRecovers) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  o.seed = 3;
  scenario::Testbed bed(o);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.voice.always_on = true;
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(2, pc);
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch");
  ASSERT_TRUE(call.established);
  bed.run_for(seconds(5));

  // 10 s of terrible radio (50% injected loss) -- voice suffers but the
  // call and routing survive, and quality recovers afterwards.
  FaultEngine engine(bed);
  engine.set_loss(0.5, 0.5, Duration{});
  bed.run_for(seconds(10));
  engine.set_loss(0, 0, Duration{});
  bed.run_for(seconds(10));

  const auto report = alice.call_report(call.call);
  ASSERT_TRUE(report);
  EXPECT_GT(report->packets_received, 400u);  // stream continued overall
  EXPECT_TRUE(alice.in_call(call.call));
}

TEST(ResilienceTest, StackRestartReRegistersCleanly) {
  scenario::Options o;
  o.nodes = 2;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(1, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  ASSERT_TRUE(bed.call_and_wait(alice, "bob@voicehoc.ch").established);

  // Crash node 1's whole middleware stack and respawn it cold (daemon
  // crash + restart; Bob's phone reboots with it).
  FaultEngine engine(bed);
  engine.crash(1);
  bed.run_for(seconds(2));
  engine.restart(1);
  bed.run_for(seconds(2));
  // Bob must re-register (his proxy lost its bindings); then calls work.
  bed.register_and_wait(bob);
  const auto again = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(15));
  EXPECT_TRUE(again.established);
}

TEST(ResilienceTest, SlpEntryExpiryCausesCleanMissNotStaleForward) {
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  // Short advertise lifetime so expiry happens within the test.
  o.stack.proxy.slp_advertise_lifetime = seconds(5);
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  ASSERT_TRUE(bed.call_and_wait(alice, "bob@voicehoc.ch").established);

  // Bob's phone dies silently; his advertisement expires everywhere.
  bob.power_off();
  FaultEngine engine(bed);
  engine.jam(2);
  bed.run_for(seconds(20));
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(12));
  EXPECT_FALSE(result.established);
  EXPECT_EQ(result.failure_status, 404);  // clean miss, not a black hole

  // The expired advertisement must be gone from every cache (invariant I3).
  InvariantMonitor monitor(bed);
  monitor.check();
  EXPECT_TRUE(monitor.report().ok()) << monitor.report().to_string();
}

TEST(ResilienceTest, SimultaneousCrossCallsBothComplete) {
  // Glare: alice calls bob while bob calls alice.
  scenario::Options o;
  o.nodes = 3;
  o.routing = RoutingKind::kAodv;
  scenario::Testbed bed(o);
  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(2, "bob");
  bed.settle(seconds(2));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  int established = 0;
  voip::SoftPhoneEvents ae, be;
  ae.on_established = [&](sip::CallId) { ++established; };
  be.on_established = [&](sip::CallId) { ++established; };
  alice.set_events(std::move(ae));
  bob.set_events(std::move(be));
  alice.dial("bob@voicehoc.ch");
  bob.dial("alice@voicehoc.ch");
  bed.run_for(seconds(10));
  // Both INVITEs complete: each phone has one outgoing + one incoming call.
  EXPECT_EQ(established, 4);  // 2 UAC-side + 2 UAS-side events
  EXPECT_EQ(alice.user_agent().active_calls(), 2u);
  EXPECT_EQ(bob.user_agent().active_calls(), 2u);
}

}  // namespace
}  // namespace siphoc
