// MetricsRegistry: instrument semantics, label cardinality cap, span ring
// wraparound, virtual-time stamping and export round-trips. The registry
// is process-wide, so every test starts from reset().
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "sim/simulator.hpp"

namespace siphoc {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset();
    registry().set_label_cardinality_cap(512);
    registry().set_span_capacity(4096);
  }
  void TearDown() override { registry().reset(); }
  MetricsRegistry& registry() { return MetricsRegistry::instance(); }
};

TEST_F(MetricsTest, CounterIsMonotonicAndSharedByKey) {
  auto& c = registry().counter("test.events_total", "n0", "unit");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  // Same (name, node, component) -> same series.
  EXPECT_EQ(&registry().counter("test.events_total", "n0", "unit"), &c);
  // Different node -> distinct series.
  auto& other = registry().counter("test.events_total", "n1", "unit");
  EXPECT_NE(&other, &c);
  other.add(7);
  EXPECT_EQ(registry().counter_total("test.events_total"), 12u);
}

TEST_F(MetricsTest, GaugeMovesBothWays) {
  auto& g = registry().gauge("test.level", "n0", "unit");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketEdges) {
  const double bounds[] = {1.0, 5.0, 10.0};
  auto& h = registry().histogram("test.latency_ms", bounds, "n0", "unit");

  h.observe(0.5);   // below first bound
  h.observe(1.0);   // exactly on a bound -> that bucket (le semantics)
  h.observe(5.000000001);  // just above -> next bucket
  h.observe(10.0);
  h.observe(99.0);  // beyond every bound -> +inf

  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 2u);  // 5.000000001, 10.0
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // 99.0
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.000000001 + 10.0 + 99.0);
}

TEST_F(MetricsTest, HistogramBoundsFixedAtFirstRegistration) {
  const double first[] = {1.0, 2.0};
  const double second[] = {100.0};
  auto& a = registry().histogram("test.h", first, "n0", "unit");
  auto& b = registry().histogram("test.h", second, "n0", "unit");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(MetricsTest, LabelCardinalityCapFoldsIntoOverflowSeries) {
  registry().set_label_cardinality_cap(3);
  registry().counter("test.capped_total", "n0", "unit").add();
  registry().counter("test.capped_total", "n1", "unit").add();
  registry().counter("test.capped_total", "n2", "unit").add();

  // Label sets beyond the cap share one overflow series...
  auto& over_a = registry().counter("test.capped_total", "n3", "unit");
  auto& over_b = registry().counter("test.capped_total", "n4", "unit");
  EXPECT_EQ(&over_a, &over_b);
  over_a.add(10);

  // ...while existing series stay reachable, and nothing is lost from the
  // aggregate.
  EXPECT_EQ(registry().counter("test.capped_total", "n1", "unit").value(), 1u);
  EXPECT_EQ(registry().counter_total("test.capped_total"), 13u);
  EXPECT_NE(registry().find_counter("test.capped_total", "(overflow)",
                                    "(overflow)"),
            nullptr);
  // The cap is per name: a fresh name is unaffected.
  auto& fresh = registry().counter("test.other_total", "n9", "unit");
  fresh.add();
  EXPECT_EQ(registry().find_counter("test.other_total", "n9", "unit"),
            &fresh);
}

TEST_F(MetricsTest, SpanRingWrapsAroundKeepingNewest) {
  registry().set_span_capacity(4);
  for (int i = 0; i < 10; ++i) {
    registry().record_span("s" + std::to_string(i), "unit", "n0",
                           TimePoint{microseconds(i)},
                           TimePoint{microseconds(i + 1)});
  }
  EXPECT_EQ(registry().spans_recorded(), 10u);
  EXPECT_EQ(registry().spans_dropped(), 6u);
  const auto spans = registry().spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(spans.front().name, "s6");
  EXPECT_EQ(spans.back().name, "s9");
  EXPECT_EQ(spans.back().t_start, TimePoint{microseconds(9)});
}

TEST_F(MetricsTest, SpansCarryVirtualTimeFromSimulator) {
  sim::Simulator sim;  // registers itself as the registry time source
  sim.schedule(milliseconds(5), [] {
    ScopedSpan span("work", "unit", "n0");  // records [5ms, 5ms]
  });
  sim.schedule(milliseconds(7), [this] {
    registry().record_span("tail", "unit", "n0",
                           registry().now() - milliseconds(2),
                           registry().now());
  });
  sim.run_to_completion();

  const auto spans = registry().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].t_start, TimePoint{milliseconds(5)});
  EXPECT_EQ(spans[1].t_start, TimePoint{milliseconds(5)});
  EXPECT_EQ(spans[1].t_end, TimePoint{milliseconds(7)});
}

TEST_F(MetricsTest, JsonExportRoundTrip) {
  registry().counter("test.events_total", "n0", "unit").add(3);
  registry().gauge("test.level", "n0", "unit").set(1.5);
  const double bounds[] = {1.0, 10.0};
  auto& h = registry().histogram("test.latency_ms", bounds, "n0", "unit");
  h.observe(0.5);
  h.observe(42.0);
  registry().record_span("test_span", "unit", "n0",
                         TimePoint{microseconds(100)},
                         TimePoint{microseconds(250)});

  const std::string json = registry().to_json();
  EXPECT_NE(json.find("\"schema\": \"siphoc.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"test.events_total\", \"node\": \"n0\", "
                      "\"component\": \"unit\", \"value\": 3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 42.5"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+inf\", \"count\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"t_start_us\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"t_end_us\": 250"), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\": 0"), std::string::npos);
}

TEST_F(MetricsTest, CsvExportRoundTrip) {
  registry().counter("test.events_total", "n0", "unit").add(3);
  const double bounds[] = {1.0};
  registry().histogram("test.latency_ms", bounds, "n0", "unit").observe(2.0);
  registry().record_span("test_span", "unit", "n0",
                         TimePoint{microseconds(100)},
                         TimePoint{microseconds(250)});

  const std::string csv = registry().to_csv();
  EXPECT_EQ(csv.rfind("kind,name,node,component,key,value,value2\n", 0), 0u);
  EXPECT_NE(csv.find("counter,test.events_total,n0,unit,value,3,"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,test.latency_ms,n0,unit,le,+inf,1"),
            std::string::npos);
  EXPECT_NE(csv.find("span,test_span,n0,unit,span,100,250"),
            std::string::npos);
}

TEST_F(MetricsTest, ResetDropsSeriesAndSpansButKeepsConfig) {
  registry().set_label_cardinality_cap(7);
  registry().set_span_capacity(11);
  registry().counter("test.events_total", "n0", "unit").add();
  registry().record_span("s", "unit", "n0", TimePoint{}, TimePoint{});

  registry().reset();
  EXPECT_EQ(registry().counter_total("test.events_total"), 0u);
  EXPECT_EQ(registry().find_counter("test.events_total", "n0", "unit"),
            nullptr);
  EXPECT_TRUE(registry().spans().empty());
  EXPECT_EQ(registry().spans_recorded(), 0u);
  EXPECT_EQ(registry().label_cardinality_cap(), 7u);
  EXPECT_EQ(registry().span_capacity(), 11u);
}

}  // namespace
}  // namespace siphoc
